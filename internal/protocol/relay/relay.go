// Package relay implements the honest participant of a depth-d EIG relay
// protocol over the netsim engine. It is the message-passing realization of
// the paper's algorithm skeleton (§4):
//
//	round 1:     the sender sends its value to all receivers;
//	round r ≥ 2: every receiver relays, for each claim σ of length r−1 it
//	             holds (with itself not on σ), the value it recorded for σ,
//	             labelled σ·self — "self says the value along σ is v";
//	after the last round each receiver resolves its EIG tree with the
//	protocol's voting rule.
//
// The same node serves the paper's BYZ(m,m) (rule = VOTE(n_σ−1−m, n_σ−1))
// and the OM(m) baseline (rule = majority); only the rule differs. Honest
// nodes always send every scheduled message (the paper assumes a node always
// sends when it is supposed to); a claim that never arrived is relayed as
// the default value, which is also what receivers substitute for absent
// messages.
package relay

import (
	"fmt"

	"degradable/internal/eig"
	"degradable/internal/round"
	"degradable/internal/types"
)

// Node is an honest protocol participant (sender or receiver).
type Node struct {
	id       types.NodeID
	n        int
	sender   types.NodeID
	value    types.Value // sender's input; unused for receivers
	tree     *eig.Tree
	rule     eig.Rule
	decision types.Value
	decided  bool

	// fastResolve lets Finish take the tree's O(1) unanimity shortcut. Only
	// sound for unanimity-respecting rules; see EnableFastResolve.
	fastResolve bool

	// tmpl caches per-round outbox templates, indexed by round. A round's
	// relay schedule is value-independent: the (To, Round, Path) triples are
	// a pure function of (n, depth, sender, id, round), so the template is
	// built once and only the Value fields are rewritten on each Outbox call.
	// Safe to hand to callers because the engine copies Message structs on
	// Collect and nothing mutates the shared Path backing arrays. Survives
	// Reset — pooled nodes re-run the same shape.
	tmpl [][]types.Message
}

var _ round.Node = (*Node)(nil)

// New returns an honest node. If id == sender, value is the input to
// distribute; receivers ignore it. depth is the number of message rounds.
func New(n, depth int, sender, id types.NodeID, value types.Value, rule eig.Rule) (*Node, error) {
	if id < 0 || int(id) >= n {
		return nil, fmt.Errorf("relay: id %d out of range", int(id))
	}
	if rule == nil {
		return nil, fmt.Errorf("relay: nil rule")
	}
	tree, err := eig.New(n, depth, sender)
	if err != nil {
		return nil, err
	}
	return &Node{id: id, n: n, sender: sender, value: value, tree: tree, rule: rule}, nil
}

// ID implements round.Node.
func (nd *Node) ID() types.NodeID { return nd.id }

// Reset returns the node to its pre-run state with a (possibly new) sender
// input, retaining the tree's allocated storage. The serving runtime pools
// node complements across agreement instances of the same shape; a Reset
// node behaves identically to a freshly constructed one.
func (nd *Node) Reset(value types.Value) {
	nd.value = value
	nd.decision = types.Default
	nd.decided = false
	nd.tree.Reset()
}

// Tree exposes the node's EIG tree (read-only use by tests and the
// adversary's schedule generator).
func (nd *Node) Tree() *eig.Tree { return nd.tree }

// EnableFastResolve lets Finish decide via the tree's O(1) unanimity
// shortcut (eig.Tree.FastDecision) before falling back to the full resolve.
// The shortcut is only sound for unanimity-respecting rules — rules that map
// an all-v vote vector to v — which holds for the paper's VOTE (the
// threshold never exceeds the vector length) and for Majority, but not for
// an arbitrary Rule; hence opt-in rather than default.
func (nd *Node) EnableFastResolve() { nd.fastResolve = true }

// Step implements round.Node.
func (nd *Node) Step(round int, inbox []types.Message) []types.Message {
	nd.absorb(round, inbox)
	return nd.Outbox(round)
}

// Outbox computes the honest sends for the given round from the node's
// current tree. It is exported so the Byzantine wrapper in the adversary
// package can obtain the honest schedule and corrupt it.
func (nd *Node) Outbox(round int) []types.Message {
	if round < 1 || round > nd.tree.Depth() {
		return nil
	}
	if round == 1 && nd.id != nd.sender {
		return nil
	}
	if nd.tmpl == nil {
		nd.tmpl = make([][]types.Message, nd.tree.Depth()+1)
	}
	out := nd.tmpl[round]
	if out == nil {
		out = nd.buildTemplate(round)
		nd.tmpl[round] = out
	}
	// Rewrite only the values: each claim occupies a contiguous block of
	// n−1 template messages (one per recipient) sharing one path.
	if round == 1 {
		for i := range out {
			out[i].Value = nd.value
		}
		return out
	}
	for i := 0; i < len(out); i += nd.n - 1 {
		lbl := out[i].Path
		v := nd.tree.Get(lbl[:len(lbl)-1]) // Default when the claim never arrived
		for k := 0; k < nd.n-1; k++ {
			out[i+k].Value = v
		}
	}
	return out
}

// buildTemplate materializes the value-independent (To, Round, Path) frame
// of the round's schedule: round 1 is the sender's value to all, round r ≥ 2
// relays every claim of length r−1 that does not involve self, labelled with
// self appended.
func (nd *Node) buildTemplate(round int) []types.Message {
	if round == 1 {
		out := make([]types.Message, 0, nd.n-1)
		for j := 0; j < nd.n; j++ {
			if types.NodeID(j) == nd.id {
				continue
			}
			out = append(out, types.Message{
				To:    types.NodeID(j),
				Round: round,
				Path:  types.Path{nd.sender},
			})
		}
		return out
	}
	// PathCount bounds the fan-out (it counts the paths through self too, so
	// this slightly over-reserves), which keeps the builder to a single
	// allocation instead of log₂ growths.
	out := make([]types.Message, 0, nd.tree.PathCount(round-1)*(nd.n-1))
	nd.tree.ForEachPath(round-1, nd.id, func(p types.Path) bool {
		lbl := p.Append(nd.id)
		for j := 0; j < nd.n; j++ {
			if types.NodeID(j) == nd.id {
				continue
			}
			out = append(out, types.Message{To: types.NodeID(j), Round: round, Path: lbl})
		}
		return true
	})
	return out
}

// absorb validates and stores the round's deliveries. A message delivered at
// Step(r) was sent in round r−1 and must carry Round r−1 and a path of
// length r−1 whose last element is its true source; anything else is
// discarded, since a Byzantine node may send arbitrary garbage. The Round
// check matters on drivers with real transport: a frame that straggles past
// its hold-back deadline (or is replayed by an injector) arrives tagged
// with the round it was sent in, and must not be absorbed into a later one.
func (nd *Node) absorb(round int, inbox []types.Message) {
	want := round - 1
	if want < 1 {
		return
	}
	for _, m := range inbox {
		if m.Round != want {
			continue // sent in a different round than the one closing now
		}
		if len(m.Path) != want {
			continue
		}
		if m.Path.Last() != m.From {
			continue // claim not signed by its relayer
		}
		if m.Path.Contains(nd.id) {
			continue // not addressed to our role in this sub-protocol
		}
		if !nd.tree.ValidPath(m.Path) {
			continue
		}
		_ = nd.tree.Set(m.Path, m.Value) // first write wins by tree contract
	}
}

// Finish implements round.Node: it stores the last round's deliveries and
// resolves the tree.
func (nd *Node) Finish(inbox []types.Message) {
	nd.absorb(nd.tree.Depth()+1, inbox)
	switch {
	case nd.id == nd.sender:
		nd.decision = nd.value
	case nd.fastResolve:
		if v, ok := nd.tree.FastDecision(nd.id); ok {
			nd.decision = v
		} else {
			nd.decision = nd.tree.Resolve(nd.id, nd.rule)
		}
	default:
		nd.decision = nd.tree.Resolve(nd.id, nd.rule)
	}
	nd.decided = true
}

// Decide implements round.Node.
func (nd *Node) Decide() types.Value {
	if !nd.decided {
		return types.Default
	}
	return nd.decision
}

// Schedule enumerates the message templates an arbitrary (possibly faulty)
// node of the given identity is *expected* to send in the given round,
// with the honest value filled in from tree (Default when absent). Byzantine
// wrappers corrupt this schedule rather than inventing their own, which
// keeps adversarial traffic well-formed enough to be accepted by honest
// validators while leaving values (and omissions) fully adversarial.
func Schedule(tree *eig.Tree, self types.NodeID, value types.Value, round int) []types.Message {
	n := tree.N()
	if round == 1 {
		if self != tree.Sender() {
			return nil
		}
		out := make([]types.Message, 0, n-1)
		for j := 0; j < n; j++ {
			if types.NodeID(j) == self {
				continue
			}
			out = append(out, types.Message{To: types.NodeID(j), Round: round, Path: types.Path{self}, Value: value})
		}
		return out
	}
	if round > tree.Depth() {
		return nil
	}
	out := make([]types.Message, 0, tree.PathCount(round-1)*(n-1))
	tree.ForEachPath(round-1, self, func(p types.Path) bool {
		v := tree.Get(p)
		lbl := p.Append(self)
		for j := 0; j < n; j++ {
			if types.NodeID(j) == self {
				continue
			}
			out = append(out, types.Message{To: types.NodeID(j), Round: round, Path: lbl, Value: v})
		}
		return true
	})
	return out
}
