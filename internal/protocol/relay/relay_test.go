package relay

import (
	"testing"

	"degradable/internal/round"
	"degradable/internal/types"
	"degradable/internal/vote"
)

func majorityRule(_ int, vals []types.Value) types.Value { return vote.Majority(vals) }

func TestNewValidation(t *testing.T) {
	if _, err := New(5, 2, 0, 9, 0, majorityRule); err == nil {
		t.Error("out-of-range id should error")
	}
	if _, err := New(5, 2, 0, -1, 0, majorityRule); err == nil {
		t.Error("negative id should error")
	}
	if _, err := New(5, 2, 0, 1, 0, nil); err == nil {
		t.Error("nil rule should error")
	}
	if _, err := New(5, 9, 0, 1, 0, majorityRule); err == nil {
		t.Error("bad depth should error")
	}
}

func TestSenderOutboxRound1(t *testing.T) {
	nd, err := New(4, 2, 0, 0, 7, majorityRule)
	if err != nil {
		t.Fatal(err)
	}
	out := nd.Outbox(1)
	if len(out) != 3 {
		t.Fatalf("sender round-1 sends %d, want 3", len(out))
	}
	for _, m := range out {
		if m.Value != 7 || len(m.Path) != 1 || m.Path[0] != 0 || m.Round != 1 {
			t.Errorf("bad message %v", m)
		}
		if m.To == 0 {
			t.Error("sender messaged itself")
		}
	}
}

func TestReceiverSilentRound1(t *testing.T) {
	nd, err := New(4, 2, 0, 1, 0, majorityRule)
	if err != nil {
		t.Fatal(err)
	}
	if out := nd.Outbox(1); len(out) != 0 {
		t.Errorf("receiver sent %d messages in round 1", len(out))
	}
}

func TestRelayRound2(t *testing.T) {
	nd, err := New(4, 2, 0, 1, 0, majorityRule)
	if err != nil {
		t.Fatal(err)
	}
	// Deliver the sender's value, then check the relay.
	nd.Step(1, nil)
	out := nd.Step(2, []types.Message{
		{From: 0, Round: 1, Path: types.Path{0}, Value: 7},
	})
	if len(out) != 3 {
		t.Fatalf("relay count = %d, want 3", len(out))
	}
	for _, m := range out {
		if m.Value != 7 {
			t.Errorf("relayed %v, want 7", m.Value)
		}
		if m.Path.Key() != (types.Path{0, 1}).Key() {
			t.Errorf("relay path = %s", m.Path)
		}
	}
}

func TestRelayAbsentClaimAsDefault(t *testing.T) {
	nd, err := New(4, 2, 0, 1, 0, majorityRule)
	if err != nil {
		t.Fatal(err)
	}
	nd.Step(1, nil)
	out := nd.Step(2, nil) // sender's message never arrived
	if len(out) != 3 {
		t.Fatalf("relay count = %d, want 3", len(out))
	}
	for _, m := range out {
		if m.Value != types.Default {
			t.Errorf("absent claim relayed as %v, want V_d", m.Value)
		}
	}
}

func TestAbsorbRejectsMalformed(t *testing.T) {
	nd, err := New(5, 3, 0, 1, 0, majorityRule)
	if err != nil {
		t.Fatal(err)
	}
	nd.Step(1, nil)
	bad := []types.Message{
		{From: 2, Round: 1, Path: types.Path{0}, Value: 9},    // wrong last: path last 0 != from 2
		{From: 2, Round: 1, Path: types.Path{0, 2}, Value: 9}, // wrong length for round 2
		{From: 2, Round: 1, Path: types.Path{1}, Value: 9},    // wrong root (sender is 0)
		{From: 2, Round: 1, Path: types.Path{0, 1}, Value: 9}, // contains self
		{From: 2, Round: 1, Path: types.Path{}, Value: 9},     // empty path
	}
	nd.Step(2, bad)
	if nd.Tree().Stored() != 0 {
		t.Errorf("malformed messages were stored: %d", nd.Tree().Stored())
	}
	// A well-formed one is stored.
	nd2, _ := New(5, 3, 0, 1, 0, majorityRule)
	nd2.Step(1, nil)
	nd2.Step(2, []types.Message{{From: 0, Round: 1, Path: types.Path{0}, Value: 9}})
	if nd2.Tree().Stored() != 1 {
		t.Error("well-formed message was not stored")
	}
}

func TestDecideBeforeFinish(t *testing.T) {
	nd, err := New(4, 2, 0, 1, 0, majorityRule)
	if err != nil {
		t.Fatal(err)
	}
	if nd.Decide() != types.Default {
		t.Error("undeciced node should report V_d")
	}
}

func TestSenderDecidesOwnValue(t *testing.T) {
	nd, err := New(4, 2, 0, 0, 42, majorityRule)
	if err != nil {
		t.Fatal(err)
	}
	nd.Finish(nil)
	if nd.Decide() != 42 {
		t.Errorf("sender decided %v", nd.Decide())
	}
}

// Full OM(1)-style run through the engine with four honest nodes.
func TestEndToEndHonest(t *testing.T) {
	const n = 4
	nodes := make([]round.Node, n)
	for i := 0; i < n; i++ {
		nd, err := New(n, 2, 0, types.NodeID(i), 5, majorityRule)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
	}
	res, err := round.Run(nodes, round.Config{Rounds: 2}, round.Reference{})
	if err != nil {
		t.Fatal(err)
	}
	for id, d := range res.Decisions {
		if d != 5 {
			t.Errorf("node %d decided %v", int(id), d)
		}
	}
}

func TestScheduleMatchesOutbox(t *testing.T) {
	nd, err := New(5, 3, 0, 2, 0, majorityRule)
	if err != nil {
		t.Fatal(err)
	}
	nd.Step(1, nil)
	nd.Step(2, []types.Message{{From: 0, Round: 1, Path: types.Path{0}, Value: 9}})
	want := nd.Outbox(3)
	got := Schedule(nd.Tree(), 2, 0, 3)
	if len(got) != len(want) {
		t.Fatalf("Schedule len %d, Outbox len %d", len(got), len(want))
	}
	for i := range want {
		if got[i].To != want[i].To || got[i].Value != want[i].Value || got[i].Path.Key() != want[i].Path.Key() {
			t.Errorf("Schedule[%d] = %v, Outbox = %v", i, got[i], want[i])
		}
	}
	// Round past depth: nothing.
	if out := Schedule(nd.Tree(), 2, 0, 4); out != nil {
		t.Error("Schedule past depth should be nil")
	}
	// Non-sender in round 1: nothing.
	if out := Schedule(nd.Tree(), 2, 0, 1); out != nil {
		t.Error("non-sender round-1 Schedule should be nil")
	}
}
