// Package sm implements Lamport–Shostak–Pease's authenticated algorithm
// SM(m) ("signed messages") — the third algorithm of the paper's reference
// [7] and the classical contrast to the oral-messages family: with
// unforgeable signatures, Byzantine agreement needs only N ≥ m+2 nodes for
// m faults, versus 3m+1 for OM(m) and 2m+u+1 for the degradable trade.
// Experiment E12 puts the three node budgets side by side.
//
// The algorithm: the sender signs its value and sends it to everyone. A
// receiver that obtains a validly signed chain (v : s : j1 : ... : jk) with
// a new value v adds v to its set V, and — while the chain carries at most
// m signatures — appends its own signature and relays to every node not on
// the chain. After m+1 rounds each receiver decides choice(V): the sole
// element when |V| = 1, the default value otherwise.
//
// Byzantine nodes may sign any values of their own (equivocation included)
// and may withhold relays, but cannot forge other nodes' signatures — any
// value tampering in flight invalidates the chain and the message is
// discarded. The fault model is enforced by the sig.Authority substrate.
package sm

import (
	"fmt"

	"degradable/internal/round"
	"degradable/internal/sig"
	"degradable/internal/types"
)

// Params configures one SM(m) instance.
type Params struct {
	// N is the node count, sender included. SM(m) needs N ≥ m+2.
	N int
	// M is the fault bound.
	M int
	// Sender is the distributing node.
	Sender types.NodeID
}

// Validate checks N ≥ m+2 and ranges.
func (p Params) Validate() error {
	if p.M < 1 {
		return fmt.Errorf("sm: m must be at least 1, got %d", p.M)
	}
	if p.N < p.M+2 {
		return fmt.Errorf("sm: need N >= m+2; N=%d m=%d", p.N, p.M)
	}
	if p.Sender < 0 || int(p.Sender) >= p.N {
		return fmt.Errorf("sm: sender %d out of range", int(p.Sender))
	}
	return nil
}

// Depth returns the number of message rounds, m+1.
func (p Params) Depth() int { return p.M + 1 }

// Egress lets a Byzantine node rewrite (or drop) an outgoing value BEFORE
// it is signed, so its lies carry its own valid signature — exactly the
// power the authenticated model grants a traitor. Honest nodes use nil.
type Egress func(m types.Message) (types.Value, bool)

// Node is an SM(m) participant.
type Node struct {
	p        Params
	id       types.NodeID
	auth     *sig.Authority
	value    types.Value // sender's input
	egress   Egress
	seen     map[types.Value]bool
	decision types.Value
	decided  bool
}

var _ round.Node = (*Node)(nil)

// NewNode returns a participant. auth must be shared by the whole instance.
func NewNode(p Params, id types.NodeID, value types.Value, auth *sig.Authority, egress Egress) (*Node, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if id < 0 || int(id) >= p.N {
		return nil, fmt.Errorf("sm: id %d out of range", int(id))
	}
	if auth == nil {
		return nil, fmt.Errorf("sm: nil authority")
	}
	return &Node{p: p, id: id, auth: auth, value: value, egress: egress, seen: make(map[types.Value]bool)}, nil
}

// ID implements round.Node.
func (nd *Node) ID() types.NodeID { return nd.id }

// Step implements round.Node.
func (nd *Node) Step(round int, inbox []types.Message) []types.Message {
	if round == 1 {
		if nd.id != nd.p.Sender {
			return nil
		}
		// The sender signs and sends its value; value may be per-recipient
		// for a Byzantine (equivocating) sender.
		var out []types.Message
		for j := 0; j < nd.p.N; j++ {
			to := types.NodeID(j)
			if to == nd.id {
				continue
			}
			v := nd.value
			if nd.egress != nil {
				var keep bool
				v, keep = nd.egress(types.Message{To: to, Round: round, Path: types.Path{nd.id}, Value: nd.value})
				if !keep {
					continue
				}
			}
			chain := nd.auth.Sign(nd.id, v, nil)
			out = append(out, types.Message{To: to, Path: chain, Value: v})
		}
		nd.seen[nd.value] = true
		return out
	}
	return nd.relay(round, inbox)
}

// relay validates the round's deliveries and relays newly seen values.
func (nd *Node) relay(round int, inbox []types.Message) []types.Message {
	var out []types.Message
	for _, m := range nd.accept(round, inbox) {
		if len(m.Path) > nd.p.M {
			continue // already carries m+1 signatures; no further relay
		}
		for j := 0; j < nd.p.N; j++ {
			to := types.NodeID(j)
			if to == nd.id || m.Path.Contains(to) {
				continue
			}
			v := m.Value
			if nd.egress != nil {
				var keep bool
				v, keep = nd.egress(types.Message{To: to, Round: round, Path: m.Path, Value: m.Value})
				if !keep {
					continue
				}
			}
			// Signing a changed value yields a chain whose earlier links
			// don't verify for v — receivers will discard it, exactly as
			// the signature model dictates. The faulty node may still do
			// it; it just doesn't help.
			chain := nd.auth.Sign(nd.id, v, m.Path)
			out = append(out, types.Message{To: to, Path: chain, Value: v})
		}
	}
	return out
}

// accept returns the validly signed, fresh-valued messages of the round and
// records their values.
func (nd *Node) accept(round int, inbox []types.Message) []types.Message {
	var fresh []types.Message
	for _, m := range inbox {
		if len(m.Path) != round-1 {
			continue
		}
		if m.Path.Last() != m.From || m.Path[0] != nd.p.Sender {
			continue
		}
		if m.Path.Contains(nd.id) || !m.Path.Valid(nd.p.N) {
			continue
		}
		if !nd.auth.Verify(m.Value, m.Path) {
			continue // forged or tampered chain
		}
		if nd.seen[m.Value] {
			continue
		}
		nd.seen[m.Value] = true
		fresh = append(fresh, m)
	}
	return fresh
}

// Finish implements round.Node.
func (nd *Node) Finish(inbox []types.Message) {
	nd.accept(nd.p.Depth()+1, inbox)
	if nd.id == nd.p.Sender {
		nd.decision = nd.value
	} else {
		nd.decision = nd.choice()
	}
	nd.decided = true
}

// choice implements SM's choice(V): the unique value when exactly one
// genuine value was certified, the default otherwise. The sender's own
// bookkeeping entry is excluded for receivers (they track only certified
// values).
func (nd *Node) choice() types.Value {
	var only types.Value
	count := 0
	for v := range nd.seen {
		only = v
		count++
	}
	if count == 1 {
		return only
	}
	return types.Default
}

// Decide implements round.Node.
func (nd *Node) Decide() types.Value {
	if !nd.decided {
		return types.Default
	}
	return nd.decision
}

// Instance bundles the node complement and shared authority for one run.
type Instance struct {
	Params Params
	Auth   *sig.Authority
	Nodes  []round.Node
}

// NewInstance builds all-honest nodes with the sender holding value;
// replace entries' egress by rebuilding with NewNode for Byzantine nodes.
func NewInstance(p Params, value types.Value) (*Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	auth := sig.NewAuthority()
	nodes := make([]round.Node, p.N)
	for i := 0; i < p.N; i++ {
		nd, err := NewNode(p, types.NodeID(i), value, auth, nil)
		if err != nil {
			return nil, err
		}
		nodes[i] = nd
	}
	return &Instance{Params: p, Auth: auth, Nodes: nodes}, nil
}

// Arm replaces node id with a Byzantine participant driven by egress.
func (in *Instance) Arm(id types.NodeID, value types.Value, egress Egress) error {
	if id < 0 || int(id) >= in.Params.N {
		return fmt.Errorf("sm: arm id %d out of range", int(id))
	}
	nd, err := NewNode(in.Params, id, value, in.Auth, egress)
	if err != nil {
		return err
	}
	in.Nodes[int(id)] = nd
	return nil
}

// Run executes the instance under the given round driver (nil selects the
// sequential reference schedule — SM has no concurrency of its own, and the
// protocol layer never names a concrete driver).
func (in *Instance) Run(d round.Driver) (*round.Result, error) {
	if d == nil {
		d = round.Reference{}
	}
	return round.Run(in.Nodes, round.Config{Rounds: in.Params.Depth()}, d)
}
