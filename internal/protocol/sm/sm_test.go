package sm

import (
	"fmt"
	"testing"

	"degradable/internal/types"
)

const (
	alpha types.Value = 100
	beta  types.Value = 200
)

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Params
		wantErr bool
	}{
		{"SM(1) minimal", Params{N: 3, M: 1}, false},
		{"SM(2) minimal", Params{N: 4, M: 2}, false},
		{"SM(3) roomy", Params{N: 7, M: 3}, false},
		{"too few", Params{N: 2, M: 1}, true},
		{"zero m", Params{N: 4, M: 0}, true},
		{"bad sender", Params{N: 4, M: 1, Sender: 4}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestFaultFree(t *testing.T) {
	in, err := NewInstance(Params{N: 4, M: 2}, alpha)
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	for id, d := range res.Decisions {
		if d != alpha {
			t.Errorf("node %d decided %v", int(id), d)
		}
	}
}

// The authenticated algorithm's headline: agreement with N = m+2 — far
// below the oral-messages 3m+1 — for every fault placement and a set of
// adversarial egress behaviours.
func TestAgreementAtMPlusTwo(t *testing.T) {
	for _, m := range []int{1, 2, 3} {
		m := m
		t.Run(fmt.Sprintf("SM(%d)_N%d", m, m+2), func(t *testing.T) {
			p := Params{N: m + 2, M: m}
			all := make([]types.NodeID, p.N)
			for i := range all {
				all[i] = types.NodeID(i)
			}
			for f := 0; f <= m; f++ {
				types.Subsets(all, f, func(faulty types.NodeSet) bool {
					for _, eg := range egressBattery() {
						runSM(t, p, faulty, eg)
					}
					return !t.Failed()
				})
			}
		})
	}
}

// egressBattery enumerates adversarial pre-signing behaviours.
func egressBattery() []struct {
	name string
	mk   func(self types.NodeID) Egress
} {
	return []struct {
		name string
		mk   func(self types.NodeID) Egress
	}{
		{"silent", func(types.NodeID) Egress {
			return func(types.Message) (types.Value, bool) { return 0, false }
		}},
		{"lie-beta", func(types.NodeID) Egress {
			return func(types.Message) (types.Value, bool) { return beta, true }
		}},
		{"equivocate-by-parity", func(types.NodeID) Egress {
			return func(m types.Message) (types.Value, bool) {
				if m.To%2 == 0 {
					return alpha, true
				}
				return beta, true
			}
		}},
		{"selective-silence", func(types.NodeID) Egress {
			return func(m types.Message) (types.Value, bool) {
				if m.To%2 == 0 {
					return 0, false
				}
				return m.Value, true
			}
		}},
		{"honest", func(types.NodeID) Egress {
			return func(m types.Message) (types.Value, bool) { return m.Value, true }
		}},
	}
}

func runSM(t *testing.T, p Params, faulty types.NodeSet, eg struct {
	name string
	mk   func(self types.NodeID) Egress
}) {
	t.Helper()
	in, err := NewInstance(p, alpha)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range faulty.IDs() {
		if err := in.Arm(id, alpha, eg.mk(id)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := in.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	// IC1': all fault-free receivers decide the same value; IC2': if the
	// sender is fault-free they decide its value.
	senderFaulty := faulty.Contains(p.Sender)
	var ref types.Value
	first := true
	for i := 0; i < p.N; i++ {
		id := types.NodeID(i)
		if id == p.Sender || faulty.Contains(id) {
			continue
		}
		d := res.Decisions[id]
		if !senderFaulty && d != alpha {
			t.Errorf("faulty=%v egress=%s: node %d decided %v with fault-free sender",
				faulty, eg.name, int(id), d)
		}
		if first {
			ref, first = d, false
		} else if d != ref {
			t.Errorf("faulty=%v egress=%s: receivers disagree (%v vs %v)", faulty, eg.name, ref, d)
		}
	}
}

// An equivocating faulty sender drives everyone to the default — both
// values are certified, so choice(V) with |V| = 2 yields V_d.
func TestEquivocatingSenderYieldsDefault(t *testing.T) {
	p := Params{N: 4, M: 1}
	in, err := NewInstance(p, alpha)
	if err != nil {
		t.Fatal(err)
	}
	err = in.Arm(0, alpha, func(m types.Message) (types.Value, bool) {
		if m.To == 1 {
			return alpha, true
		}
		return beta, true
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []types.NodeID{1, 2, 3} {
		if d := res.Decisions[id]; d != types.Default {
			t.Errorf("node %d decided %v, want V_d", int(id), d)
		}
	}
}

// A faulty relayer cannot launder a changed value: its re-signed chain
// fails prefix verification and is discarded, so agreement is unaffected.
func TestRelayTamperingIsImpotent(t *testing.T) {
	p := Params{N: 4, M: 2}
	in, err := NewInstance(p, alpha)
	if err != nil {
		t.Fatal(err)
	}
	err = in.Arm(2, alpha, func(m types.Message) (types.Value, bool) {
		if m.Round >= 2 {
			return beta, true // tamper every relay
		}
		return m.Value, true
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []types.NodeID{1, 3} {
		if d := res.Decisions[id]; d != alpha {
			t.Errorf("node %d decided %v despite signature protection", int(id), d)
		}
	}
}

func TestInstanceArmValidation(t *testing.T) {
	in, err := NewInstance(Params{N: 4, M: 1}, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Arm(9, alpha, nil); err == nil {
		t.Error("out-of-range arm should error")
	}
}

func TestNewNodeValidation(t *testing.T) {
	p := Params{N: 4, M: 1}
	if _, err := NewNode(p, 0, alpha, nil, nil); err == nil {
		t.Error("nil authority should error")
	}
	if _, err := NewNode(p, 9, alpha, nil, nil); err == nil {
		t.Error("bad id should error")
	}
	if _, err := NewInstance(Params{N: 2, M: 1}, alpha); err == nil {
		t.Error("invalid params should error")
	}
}

func TestDecideBeforeFinish(t *testing.T) {
	in, err := NewInstance(Params{N: 4, M: 1}, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Nodes[1].Decide(); got != types.Default {
		t.Errorf("undecided node reports %v", got)
	}
}
