package round

import (
	"fmt"

	"degradable/internal/types"
)

// AsyncNode is a message-driven protocol participant: the asynchronous
// counterpart of Node, with no round structure at all. The run calls Start
// once for the node's initial sends, then OnDeliver for every message the
// scheduler delivers to it; returned messages are enqueued for future
// policy-chosen delivery. Decided is polled after every delivery — a node
// decides when its quorum certificates complete, never because a deadline
// passed.
//
// Implementations need not be safe for concurrent use: the async run is a
// single deterministic event loop, which is what makes every schedule
// recordable and replayable from a seed. As in the synchronous mode, a
// well-formed message may arrive more than once (duplication faults;
// ingestion must be idempotent) and may never arrive — but unlike the
// synchronous mode, absence is not detectable, so protocols must make
// progress from quorums of what did arrive.
type AsyncNode interface {
	ID() types.NodeID
	Start() []types.Message
	OnDeliver(m types.Message) []types.Message
	Decided() (types.Value, bool)
}

// AsyncConfig controls an asynchronous run.
type AsyncConfig struct {
	// Policy orders deliveries; nil means FIFO. Seeded policies make the
	// whole run a deterministic function of (nodes, config).
	Policy Policy
	// Channel interposes on deliveries; nil means PerfectChannel.
	Channel Channel
	// MaxDeliveries bounds the run (asynchronous protocols have no round
	// count to bound them). Zero means 64·n² — far above any terminating
	// Bracha-broadcast or ABA schedule at these system sizes, so hitting
	// the bound reads as non-termination, not truncation.
	MaxDeliveries int
	// WaitFor is the set of nodes whose decisions end the run (the honest
	// complement, normally — Byzantine nodes may never decide). The empty
	// set means every node.
	WaitFor types.NodeSet
	// Trace, when non-nil, observes every delivered message in schedule
	// order — the replayable delivery transcript.
	Trace func(types.Message)
}

// AsyncResult summarizes an asynchronous run.
type AsyncResult struct {
	// Decisions maps every node that decided to its decision. Undecided
	// nodes are absent — asynchronous runs may legitimately end with
	// partial decisions (a starved node, a withheld certificate).
	Decisions map[types.NodeID]types.Value
	// DeliveriesToDecision maps each decided node to the total number of
	// deliveries the run had performed when it decided — the asynchronous
	// latency measure (there are no rounds to count).
	DeliveriesToDecision map[types.NodeID]int
	// Messages is the number of sends accepted; Delivered the number of
	// physical copies delivered; Bytes the approximate wire volume.
	Messages  int
	Delivered int
	Bytes     int
	// Terminated reports that every WaitFor node decided.
	Terminated bool
	// Starved reports that the run ended with the policy withholding
	// queued sends (targeted starvation), as opposed to an empty queue or
	// an exhausted delivery budget.
	Starved bool
}

// RunAsync executes an asynchronous protocol under a seed-driven scheduler:
// the fourth execution mode, with no round barrier — the policy picks one
// queued send at a time, the recipient's handler runs, and its sends join
// the queue. The run ends when every WaitFor node has decided, the queue
// empties, the policy withholds everything left, or MaxDeliveries is
// reached. Nodes must have distinct IDs in [0, len(nodes)).
func RunAsync(nodes []AsyncNode, cfg AsyncConfig) (*AsyncResult, error) {
	n := len(nodes)
	if n == 0 {
		return nil, fmt.Errorf("round: no nodes")
	}
	byID := make([]AsyncNode, n)
	for _, nd := range nodes {
		id := nd.ID()
		if id < 0 || int(id) >= n {
			return nil, fmt.Errorf("round: node ID %d out of range [0,%d)", int(id), n)
		}
		if byID[int(id)] != nil {
			return nil, fmt.Errorf("round: duplicate node ID %d", int(id))
		}
		byID[int(id)] = nd
	}
	policy := cfg.Policy
	if policy == nil {
		policy = FIFO{}
	}
	max := cfg.MaxDeliveries
	if max <= 0 {
		max = 64 * n * n
	}
	waitFor := cfg.WaitFor
	if waitFor.Len() == 0 {
		for i := 0; i < n; i++ {
			waitFor = waitFor.Add(types.NodeID(i))
		}
	}

	sched := NewScheduler(policy, cfg.Channel)
	res := &AsyncResult{
		Decisions:            make(map[types.NodeID]types.Value, n),
		DeliveriesToDecision: make(map[types.NodeID]int, n),
	}
	awaiting := waitFor.Len()
	decided := make([]bool, n)

	// collect stamps and validates sends exactly like the synchronous
	// Collect — §4 assumption (c): the true source is stamped, a Byzantine
	// node cannot spoof its identity. Round is protocol-owned in the
	// asynchronous mode (internal/acast packs message kinds into it), so it
	// is passed through untouched.
	collect := func(id types.NodeID, out []types.Message) {
		for _, m := range out {
			m.From = id
			if m.To < 0 || int(m.To) >= n || m.To == m.From {
				continue // drop malformed or self-addressed sends
			}
			res.Messages++
			sched.Enqueue(m)
		}
	}
	note := func(id types.NodeID) {
		if decided[id] {
			return
		}
		if v, ok := byID[id].Decided(); ok {
			decided[id] = true
			res.Decisions[id] = v
			res.DeliveriesToDecision[id] = res.Delivered
			if waitFor.Contains(id) {
				awaiting--
			}
		}
	}

	for i, nd := range byID {
		collect(types.NodeID(i), nd.Start())
		note(types.NodeID(i))
	}
	for awaiting > 0 && res.Delivered < max {
		ok := sched.Next(func(dm types.Message) {
			res.Delivered++
			res.Bytes += MessageBytes(dm)
			if cfg.Trace != nil {
				cfg.Trace(dm)
			}
			collect(dm.To, byID[int(dm.To)].OnDeliver(dm))
			note(dm.To)
		})
		if !ok {
			res.Starved = sched.Starved()
			break
		}
	}
	res.Terminated = awaiting == 0
	return res, nil
}
