package round

import (
	"reflect"
	"testing"

	"degradable/internal/types"
)

// asyncEcho is a minimal async protocol: node 0 broadcasts its value, every
// node decides the first value it hears (node 0 decides immediately).
type asyncEcho struct {
	id      types.NodeID
	n       int
	v       types.Value
	decided bool
	got     types.Value
}

func (a *asyncEcho) ID() types.NodeID { return a.id }

func (a *asyncEcho) Start() []types.Message {
	if a.id != 0 {
		return nil
	}
	a.decided, a.got = true, a.v
	out := make([]types.Message, 0, a.n-1)
	for i := 1; i < a.n; i++ {
		out = append(out, types.Message{To: types.NodeID(i), Value: a.v})
	}
	return out
}

func (a *asyncEcho) OnDeliver(m types.Message) []types.Message {
	if !a.decided {
		a.decided, a.got = true, m.Value
	}
	return nil
}

func (a *asyncEcho) Decided() (types.Value, bool) { return a.got, a.decided }

func echoFleet(n int, v types.Value) []AsyncNode {
	out := make([]AsyncNode, n)
	for i := range out {
		out[i] = &asyncEcho{id: types.NodeID(i), n: n, v: v}
	}
	return out
}

func TestRunAsyncValidation(t *testing.T) {
	if _, err := RunAsync(nil, AsyncConfig{}); err == nil {
		t.Error("no nodes: expected error")
	}
	if _, err := RunAsync([]AsyncNode{
		&asyncEcho{id: 0, n: 2}, &asyncEcho{id: 0, n: 2},
	}, AsyncConfig{}); err == nil {
		t.Error("duplicate IDs: expected error")
	}
	if _, err := RunAsync([]AsyncNode{&asyncEcho{id: 5, n: 1}}, AsyncConfig{}); err == nil {
		t.Error("out-of-range ID: expected error")
	}
}

func TestRunAsyncEchoTerminates(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    Policy
	}{
		{"fifo", nil},
		{"reorder", NewReorder(3)},
		{"delay", NewDelay(3, 8)},
		{"adversarial", NewAdversarial(3)},
	} {
		res, err := RunAsync(echoFleet(4, 7), AsyncConfig{Policy: tc.p})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !res.Terminated || res.Starved {
			t.Errorf("%s: terminated=%v starved=%v, want true/false", tc.name, res.Terminated, res.Starved)
		}
		if len(res.Decisions) != 4 {
			t.Fatalf("%s: %d decisions, want 4", tc.name, len(res.Decisions))
		}
		for id, v := range res.Decisions {
			if v != 7 {
				t.Errorf("%s: node %d decided %d, want 7", tc.name, id, v)
			}
		}
		if res.Messages != 3 || res.Delivered != 3 {
			t.Errorf("%s: messages/delivered = %d/%d, want 3/3", tc.name, res.Messages, res.Delivered)
		}
		if res.DeliveriesToDecision[0] != 0 {
			t.Errorf("%s: broadcaster decided at delivery %d, want 0", tc.name, res.DeliveriesToDecision[0])
		}
	}
}

func TestRunAsyncStarvation(t *testing.T) {
	res, err := RunAsync(echoFleet(4, 7), AsyncConfig{Policy: Starve{Target: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminated {
		t.Error("starved run reported Terminated")
	}
	if !res.Starved {
		t.Error("run ended with withheld sends but Starved=false")
	}
	if _, ok := res.Decisions[2]; ok {
		t.Error("starved node decided")
	}
	if len(res.Decisions) != 3 {
		t.Errorf("%d decisions, want 3 (everyone but the victim)", len(res.Decisions))
	}
}

func TestRunAsyncWaitForSubset(t *testing.T) {
	// Waiting only on the non-starved nodes: the run terminates even though
	// node 2 never decides.
	var wait types.NodeSet
	wait = wait.Add(0).Add(1).Add(3)
	res, err := RunAsync(echoFleet(4, 9), AsyncConfig{Policy: Starve{Target: 2}, WaitFor: wait})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Error("run should terminate once every WaitFor node decided")
	}
}

func TestRunAsyncMaxDeliveries(t *testing.T) {
	// pingPong nodes bounce a message forever and never decide; the budget
	// must end the run with Terminated=false and Starved=false.
	res, err := RunAsync([]AsyncNode{
		&pingPong{id: 0, peer: 1, kick: true},
		&pingPong{id: 1, peer: 0},
	}, AsyncConfig{MaxDeliveries: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminated || res.Starved {
		t.Errorf("terminated=%v starved=%v, want false/false (budget exhausted)", res.Terminated, res.Starved)
	}
	if res.Delivered != 10 {
		t.Errorf("delivered %d, want 10", res.Delivered)
	}
}

type pingPong struct {
	id, peer types.NodeID
	kick     bool
}

func (p *pingPong) ID() types.NodeID { return p.id }

func (p *pingPong) Start() []types.Message {
	if !p.kick {
		return nil
	}
	return []types.Message{{To: p.peer, Value: 1}}
}

func (p *pingPong) OnDeliver(m types.Message) []types.Message {
	return []types.Message{{To: p.peer, Value: m.Value + 1}}
}

func (p *pingPong) Decided() (types.Value, bool) { return 0, false }

func TestRunAsyncStampsFromAndDropsMalformed(t *testing.T) {
	// spoofer tries to forge From and to send to itself and out of range;
	// only the well-formed send (with From rewritten) must arrive.
	res, err := RunAsync([]AsyncNode{
		&spoofer{id: 0},
		&asyncEcho{id: 1, n: 2},
	}, AsyncConfig{Trace: nil})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 1 || res.Delivered != 1 {
		t.Fatalf("messages/delivered = %d/%d, want 1/1", res.Messages, res.Delivered)
	}
	if v, ok := res.Decisions[1]; !ok || v != 99 {
		t.Fatalf("node 1 decided %v/%v, want 99/true", v, ok)
	}
}

type spoofer struct{ id types.NodeID }

func (s *spoofer) ID() types.NodeID { return s.id }

func (s *spoofer) Start() []types.Message {
	return []types.Message{
		{From: 1, To: 1, Value: 99}, // From must be restamped to 0
		{To: 0, Value: 1},           // self-addressed: dropped
		{To: 7, Value: 2},           // out of range: dropped
		{To: -1, Value: 3},          // out of range: dropped
	}
}

func (s *spoofer) OnDeliver(m types.Message) []types.Message {
	if m.From == 1 {
		panic("engine delivered a self-addressed or unstamped message")
	}
	return nil
}

func (s *spoofer) Decided() (types.Value, bool) { return 0, true }

func TestRunAsyncTraceMatchesSchedule(t *testing.T) {
	var a, b []types.Message
	for _, sink := range []*[]types.Message{&a, &b} {
		s := sink
		res, err := RunAsync(echoFleet(5, 3), AsyncConfig{
			Policy: NewAdversarial(11),
			Trace:  func(m types.Message) { *s = append(*s, m) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Terminated {
			t.Fatal("echo run did not terminate")
		}
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay diverged:\n %v\n %v", a, b)
	}
}
