package round

import (
	"math/rand"

	"degradable/internal/types"
)

// FilterChannel drops every message for which Keep returns false and
// delivers the rest unchanged.
type FilterChannel struct {
	Keep func(types.Message) bool
}

// Deliver implements Channel.
func (c FilterChannel) Deliver(m types.Message) (types.Message, bool) {
	if c.Keep != nil && !c.Keep(m) {
		return types.Message{}, false
	}
	return m, true
}

var _ Channel = FilterChannel{}

// RelaxedChannel models §6.1's relaxed message assumption: when more than m
// nodes are faulty, clock synchronization is no longer guaranteed, so a
// fault-free node may falsely declare a message from another fault-free node
// absent (a spurious timeout). The channel drops each message independently
// with probability Prob, using a deterministic seeded source.
//
// The paper proves the algorithm still achieves m/u-degradable agreement
// under this relaxation; experiment E8 exercises exactly this channel.
type RelaxedChannel struct {
	prob float64
	rng  *rand.Rand
	// exempt messages (e.g. those from already-Byzantine nodes, whose
	// behaviour the adversary scripts directly) are never dropped here.
	exempt types.NodeSet
}

// NewRelaxedChannel returns a channel that drops each non-exempt message
// with probability prob, deterministically per seed.
func NewRelaxedChannel(prob float64, seed int64, exempt types.NodeSet) *RelaxedChannel {
	if prob < 0 {
		prob = 0
	}
	if prob > 1 {
		prob = 1
	}
	return &RelaxedChannel{prob: prob, rng: rand.New(rand.NewSource(seed)), exempt: exempt}
}

// Deliver implements Channel.
func (c *RelaxedChannel) Deliver(m types.Message) (types.Message, bool) {
	if c.exempt.Contains(m.From) {
		return m, true
	}
	if c.rng.Float64() < c.prob {
		return types.Message{}, false
	}
	return m, true
}

var _ Channel = (*RelaxedChannel)(nil)

// ChainChannel composes channels left to right; a drop anywhere drops the
// message.
type ChainChannel []Channel

// Deliver implements Channel.
func (c ChainChannel) Deliver(m types.Message) (types.Message, bool) {
	for _, ch := range c {
		var ok bool
		m, ok = ch.Deliver(m)
		if !ok {
			return types.Message{}, false
		}
	}
	return m, true
}

var _ Channel = ChainChannel{}
