package round

import (
	"reflect"
	"testing"

	"degradable/internal/types"
)

// TestEngineRestart verifies the pooling contract: a Restarted engine
// driven over a fresh complement produces a Result identical to a freshly
// constructed engine's — decisions, message accounting, and per-round
// counts all reset.
func TestEngineRestart(t *testing.T) {
	mk := func() []Node {
		return []Node{
			&echoNode{id: 0, sends: []types.Message{msg(1, 5), msg(2, 6)}},
			&echoNode{id: 1, sends: []types.Message{msg(0, 7)}},
			&echoNode{id: 2},
		}
	}
	want, err := Run(mk(), Config{Rounds: 2}, Reference{})
	if err != nil {
		t.Fatal(err)
	}

	eng, err := NewEngine(mk(), Config{Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := (Reference{}).Drive(eng); err != nil {
		t.Fatal(err)
	}
	eng.Finalize()

	for pass := 0; pass < 3; pass++ {
		if err := eng.Restart(mk()); err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if err := (Reference{}).Drive(eng); err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		got := eng.Finalize()
		if !reflect.DeepEqual(got.Decisions, want.Decisions) {
			t.Fatalf("pass %d: decisions %v, want %v", pass, got.Decisions, want.Decisions)
		}
		if got.Messages != want.Messages || got.Delivered != want.Delivered || got.Bytes != want.Bytes {
			t.Fatalf("pass %d: accounting (%d,%d,%d), want (%d,%d,%d)", pass,
				got.Messages, got.Delivered, got.Bytes,
				want.Messages, want.Delivered, want.Bytes)
		}
		if !reflect.DeepEqual(got.PerRound, want.PerRound) {
			t.Fatalf("pass %d: per-round %v, want %v", pass, got.PerRound, want.PerRound)
		}
	}
}

// TestEngineRestartRejects verifies the complement validation: wrong count,
// out-of-range IDs, and duplicates are all refused.
func TestEngineRestartRejects(t *testing.T) {
	eng, err := NewEngine([]Node{&echoNode{id: 0}, &echoNode{id: 1}, &echoNode{id: 2}},
		Config{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Restart([]Node{&echoNode{id: 0}, &echoNode{id: 1}}); err == nil {
		t.Error("wrong node count accepted")
	}
	if err := eng.Restart([]Node{&echoNode{id: 0}, &echoNode{id: 1}, &echoNode{id: 7}}); err == nil {
		t.Error("out-of-range ID accepted")
	}
	if err := eng.Restart([]Node{&echoNode{id: 0}, &echoNode{id: 1}, &echoNode{id: 1}}); err == nil {
		t.Error("duplicate ID accepted")
	}
}
