// Package round is the event-scheduler core every execution mode of the
// protocol shares: messages flow through a deterministic, seed-driven
// Scheduler (a delivery queue ordered by a pluggable Policy, threaded
// through the Channel/Expander interposition), and per-node step functions
// consume what the scheduler delivers. The package has no opinion on *how*
// the schedule is driven — goroutines, an inline loop, one OS process per
// node exchanging frames over TCP, or a barrier-free asynchronous run.
//
// The synchronous world of the paper's §4 is one scheduling policy, not
// the engine's shape: an Engine drains the scheduler to quiescence under
// Lockstep exactly once per round (deadline-closed rounds — sends still
// queued when the barrier falls are discarded as absent), and a Driver
// supplies the barrier placement and Step concurrency. The asynchronous
// world is the same scheduler with no barrier: RunAsync pulls one
// policy-chosen delivery at a time (FIFO, seeded reordering, unbounded
// delay, targeted starvation) and message-driven AsyncNodes — quorum
// certificates instead of deadlines (see internal/acast) — decide whenever
// their certificates complete.
//
// Both modes capture the assumptions of the paper's §4 as
// machine-checkable contracts, with (b) realized per mode:
//
//	(a) messages between fault-free nodes are delivered correctly — every
//	    collected message is delivered unless the configured Channel drops
//	    it (or, asynchronously, the policy withholds it forever);
//	(b) absence of a message is detectable — synchronously, a message not
//	    delivered when its round closes never enters the inbox and
//	    protocols substitute the default value V_d; asynchronously absence
//	    is never detectable, which is exactly why the A-Cast track replaces
//	    deadlines with quorum certificates;
//	(c) the source of a message is identified — Collect (and the async
//	    run's collect) stamps every message's From field with the true
//	    sender, so even Byzantine nodes cannot spoof their identity.
//
// An Engine holds one synchronous run's state: the node complement, the
// scheduler, per-node inboxes, and the accounting that becomes the Result.
// A Driver walks the engine through its schedule:
//
//	for r := 1; r <= e.Rounds(); r++ {
//		e.Deliver()                                  // round-(r-1) sends
//		for i := 0; i < e.N(); i++ {                 // any interleaving
//			out := e.Node(i).Step(r, e.Inbox(i))
//			e.Collect(i, r, out)                 // serialized
//		}
//	}
//	e.Deliver()                                          // final delivery
//	for i := 0; i < e.N(); i++ { e.Node(i).Finish(e.Inbox(i)) }
//
// Step calls may run concurrently (each node is only ever stepped by one
// goroutine at a time); Deliver, Collect, and Finalize must be serialized
// by the driver. The in-process drivers live in internal/netsim; the
// distributed driver in internal/cluster realizes the same deadline-closed
// rounds against real sockets (its per-round hold-back buffer and wall
// clock deadline are the physical form of the Lockstep barrier, with the
// same inbox sorting, sender stamping, and byte accounting); the fourth,
// asynchronous driver is RunAsync under internal/acast's protocols.
package round

import (
	"fmt"

	"degradable/internal/obs"
	"degradable/internal/types"
)

// Node is a protocol participant. The engine calls Step for rounds 1..R,
// passing the messages sent to the node in the previous round (round 1 gets
// an empty inbox); the returned messages are delivered at the start of the
// next round. After round R, Finish delivers the final batch, then Decide is
// read. Implementations need not be safe for concurrent use; every driver
// serializes all calls to a given node.
//
// The inbox slice is only valid for the duration of the Step or Finish call:
// drivers reuse the delivery buffers across rounds. Implementations that
// retain messages must copy them (all in-tree nodes absorb values into their
// EIG tree and retain nothing).
//
// Drivers may differ in physical delivery (shared memory versus TCP frames),
// so implementations must tolerate exactly what the paper's network model
// allows: a well-formed message may arrive more than once (duplication
// faults; ingestion must be idempotent), may never arrive (detectable
// absence; substitute V_d), and inbox ordering is always the deterministic
// types.SortMessages order regardless of arrival order.
type Node interface {
	ID() types.NodeID
	Step(round int, inbox []types.Message) []types.Message
	Finish(inbox []types.Message)
	Decide() types.Value
}

// Channel interposes on message delivery. Deliver may rewrite the message
// (e.g. a relay network corrupting values in flight) or drop it entirely by
// returning false.
type Channel interface {
	Deliver(m types.Message) (types.Message, bool)
}

// Expander is an optional Channel extension for channels that can deliver a
// message more than once (duplication faults, as injected by the chaos
// engine). When the configured Channel implements Expander, the engine calls
// DeliverAll instead of Deliver; every returned message is delivered and
// counted. An empty slice drops the message.
type Expander interface {
	Channel
	DeliverAll(m types.Message) []types.Message
}

// PerfectChannel delivers every message unchanged: the complete-graph,
// fully synchronous assumption of §4.
type PerfectChannel struct{}

// Deliver implements Channel.
func (PerfectChannel) Deliver(m types.Message) (types.Message, bool) { return m, true }

var _ Channel = PerfectChannel{}

// Config controls a run. It is pure round semantics: driver selection (and
// any driver-specific tuning such as round deadlines) lives with the driver.
type Config struct {
	// Rounds is the number of message rounds (R). The engine performs R
	// Step deliveries plus a Finish delivery per node.
	Rounds int
	// Channel interposes on deliveries; nil means PerfectChannel.
	Channel Channel
	// Policy orders deliveries within each round's drain; nil means
	// Lockstep (enqueue order). Because every inbox is sorted at the
	// barrier, any non-withholding policy produces byte-identical results —
	// the barrier, not the intra-round order, is what the synchronous
	// semantics rest on; a withholding policy (Starve) turns into per-round
	// message loss, i.e. detectable absence. Protocol callers leave it nil.
	Policy Policy
	// RecordViews captures each node's full delivered-message transcript in
	// the result. Used by the lower-bound indistinguishability checks and
	// the cross-driver differential tests.
	RecordViews bool
	// Trace, when non-nil, observes every delivered message.
	Trace func(types.Message)
	// Sink, when non-nil, receives structured round events (round open and
	// close) regardless of which driver runs the schedule — the event stream
	// is a function of the round semantics alone, so deterministic drivers
	// produce identical streams.
	Sink obs.Sink
}

// Names of the engine's obs counters, in index order.
const (
	CounterMessages  = iota // sends accepted by Collect
	CounterDelivered        // messages delivered into inboxes
	CounterBytes            // approximate wire volume delivered
	numCounters
)

// CounterNames are the unified-snapshot names of the engine's counters.
var CounterNames = []string{"round_messages_total", "round_delivered_total", "round_bytes_total"}

// Result summarizes a run.
type Result struct {
	// Decisions maps every node to its decided value.
	Decisions map[types.NodeID]types.Value
	// Messages is the total number of messages sent (before channel drops).
	Messages int
	// Delivered is the total number of messages actually delivered.
	Delivered int
	// Bytes approximates the wire volume of delivered traffic: 8 bytes of
	// value plus 4 per relay-path element per message.
	Bytes int
	// PerRound is the number of messages sent in each round, indexed from
	// round 1 at position 0.
	PerRound []int
	// Views is each node's delivered transcript (only when RecordViews).
	Views map[types.NodeID][]types.Message
}

// MessageBytes is the wire-volume approximation used by every driver's
// accounting: 8 bytes of value plus 4 per relay-path element.
func MessageBytes(m types.Message) int { return 8 + 4*len(m.Path) }

// Driver executes an engine's synchronous schedule: it owns the placement
// of the round barrier over the scheduler core. Drive must follow the
// contract documented in the package comment — R iterations of Deliver
// (drain the scheduler, close the round) / Step / Collect, a final
// Deliver, then Finish for every node — and is free to choose whatever
// concurrency it wants for the Step calls. Run handles engine construction
// and Finalize; a Driver only supplies the control flow. The asynchronous
// execution mode has no Driver because it has no barrier to place: RunAsync
// pulls deliveries from the same scheduler one policy decision at a time.
type Driver interface {
	Drive(e *Engine) error
}

// Engine is one synchronous run's round state: nodes, the scheduler core
// (delivery queue + channel interposition), inboxes, and accounting.
// Methods are not safe for concurrent use except Node and Inbox (immutable
// between Deliver calls); drivers serialize Deliver and Collect.
type Engine struct {
	cfg  Config
	byID []Node

	sched    *Scheduler
	res      *Result
	counters *obs.CounterSet
	curRound int
	inboxes  [][]types.Message
}

// NewEngine validates the node complement and builds a run's engine. Nodes
// must have distinct IDs in [0, len(nodes)).
func NewEngine(nodes []Node, cfg Config) (*Engine, error) {
	n := len(nodes)
	if n == 0 {
		return nil, fmt.Errorf("round: no nodes")
	}
	if cfg.Rounds < 1 {
		return nil, fmt.Errorf("round: rounds must be >= 1, got %d", cfg.Rounds)
	}
	byID := make([]Node, n)
	for _, nd := range nodes {
		id := nd.ID()
		if id < 0 || int(id) >= n {
			return nil, fmt.Errorf("round: node ID %d out of range [0,%d)", int(id), n)
		}
		if byID[int(id)] != nil {
			return nil, fmt.Errorf("round: duplicate node ID %d", int(id))
		}
		byID[int(id)] = nd
	}
	e := &Engine{
		cfg:  cfg,
		byID: byID,
		// The scheduler is the shared event core; the engine's only policy
		// freedom is intra-round order (see Config.Policy), with the round
		// barrier supplied by the driver's Deliver calls.
		sched: NewScheduler(cfg.Policy, cfg.Channel),
		res: &Result{
			Decisions: make(map[types.NodeID]types.Value, n),
			PerRound:  make([]int, cfg.Rounds),
		},
		// inboxes is allocated once and reused every round: each per-node
		// slice is truncated and refilled in place, so after the first
		// couple of rounds delivery stops allocating entirely. Safe because
		// the round barrier guarantees no Step/Finish call is in flight
		// during delivery and nodes do not retain their inbox (see the Node
		// contract).
		inboxes:  make([][]types.Message, n),
		counters: obs.NewCounterSet(CounterNames...),
	}
	if cfg.RecordViews {
		e.res.Views = make(map[types.NodeID][]types.Message, n)
	}
	return e, nil
}

// Restart rearms the engine for a fresh run on the same configuration,
// retaining every allocated buffer (inboxes, pending queue, result maps).
// nodes replaces the complement — it must have the same count, since the
// shape (and Rounds) is fixed at construction; entries may differ from the
// previous run (the serving runtime swaps honest nodes for Byzantine
// wrappers per instance). A restarted engine is observationally identical
// to a newly constructed one, which is what lets the batch hot loop run
// instance after instance without allocating.
func (e *Engine) Restart(nodes []Node) error {
	n := len(e.byID)
	if len(nodes) != n {
		return fmt.Errorf("round: restart with %d nodes, engine built for %d", len(nodes), n)
	}
	for i := range e.byID {
		e.byID[i] = nil
	}
	for _, nd := range nodes {
		id := nd.ID()
		if id < 0 || int(id) >= n {
			return fmt.Errorf("round: node ID %d out of range [0,%d)", int(id), n)
		}
		if e.byID[int(id)] != nil {
			return fmt.Errorf("round: duplicate node ID %d", int(id))
		}
		e.byID[int(id)] = nd
	}
	clear(e.res.Decisions)
	e.res.Messages, e.res.Delivered, e.res.Bytes = 0, 0, 0
	for i := range e.res.PerRound {
		e.res.PerRound[i] = 0
	}
	if e.res.Views != nil {
		clear(e.res.Views)
	}
	e.counters.Reset()
	e.curRound = 0
	for i := range e.inboxes {
		e.inboxes[i] = e.inboxes[i][:0]
	}
	e.sched.Reset()
	return nil
}

// N returns the node count.
func (e *Engine) N() int { return len(e.byID) }

// Rounds returns the number of message rounds.
func (e *Engine) Rounds() int { return e.cfg.Rounds }

// Node returns the participant with ID i.
func (e *Engine) Node(i int) Node { return e.byID[i] }

// Deliver closes the round: it drains the scheduler under the configured
// policy into the per-node inboxes, discards whatever the policy withheld
// (the deadline passed — those sends are now detectably absent), and sorts
// each inbox deterministically, recording views. It must be called exactly
// once per round (before the round's Step calls) and once more before the
// Finish calls.
func (e *Engine) Deliver() {
	for i := range e.inboxes {
		e.inboxes[i] = e.inboxes[i][:0]
	}
	delivered := 0
	bytes := 0
	e.sched.Drain(func(dm types.Message) {
		delivered++
		bytes += MessageBytes(dm)
		if e.cfg.Trace != nil {
			e.cfg.Trace(dm)
		}
		e.inboxes[int(dm.To)] = append(e.inboxes[int(dm.To)], dm)
	})
	e.counters.Add(CounterDelivered, uint64(delivered))
	e.counters.Add(CounterBytes, uint64(bytes))
	e.sched.Reset()
	for i := range e.inboxes {
		types.SortMessages(e.inboxes[i])
		if e.cfg.RecordViews {
			e.res.Views[types.NodeID(i)] = append(e.res.Views[types.NodeID(i)], e.inboxes[i]...)
		}
	}
	if e.cfg.Sink != nil && e.curRound > 0 {
		e.cfg.Sink.Emit(obs.Event{
			Kind: obs.EvRoundClose, Node: -1, Round: int32(e.curRound),
			A: int64(e.sentIn(e.curRound)),
		})
	}
	e.curRound++
	if e.cfg.Sink != nil {
		e.cfg.Sink.Emit(obs.Event{
			Kind: obs.EvRoundOpen, Node: -1, Round: int32(e.curRound),
			A: int64(delivered),
		})
	}
}

// sentIn returns the number of sends collected in round r (0 for the final
// delivery-only phase past round R).
func (e *Engine) sentIn(r int) int {
	if r >= 1 && r <= len(e.res.PerRound) {
		return e.res.PerRound[r-1]
	}
	return 0
}

// Inbox returns node i's current delivery (valid until the next Deliver).
func (e *Engine) Inbox(i int) []types.Message { return e.inboxes[i] }

// Collect stamps, validates, and queues node i's round sends, enforcing
// assumption (c): the true source is stamped, so a Byzantine node cannot
// spoof its identity. Malformed and self-addressed sends are dropped.
func (e *Engine) Collect(i, round int, out []types.Message) {
	n := len(e.byID)
	for _, m := range out {
		m.From = types.NodeID(i)
		m.Round = round
		if m.To < 0 || int(m.To) >= n || m.To == m.From {
			continue // drop malformed or self-addressed sends
		}
		e.counters.Inc(CounterMessages)
		e.res.PerRound[round-1]++
		e.sched.Enqueue(m)
	}
}

// Finalize reads every node's decision and returns the run's result,
// materializing the obs-backed accounting into the Result view. It must be
// called once, after the driver's Finish calls.
func (e *Engine) Finalize() *Result {
	if e.cfg.Sink != nil && e.curRound > 0 {
		e.cfg.Sink.Emit(obs.Event{
			Kind: obs.EvRoundClose, Node: -1, Round: int32(e.curRound),
			A: int64(e.sentIn(e.curRound)),
		})
	}
	for i, nd := range e.byID {
		e.res.Decisions[types.NodeID(i)] = nd.Decide()
	}
	e.res.Messages = int(e.counters.Get(CounterMessages))
	e.res.Delivered = int(e.counters.Get(CounterDelivered))
	e.res.Bytes = int(e.counters.Get(CounterBytes))
	return e.res
}

// Telemetry returns the engine's live accounting as the unified snapshot
// schema (readable mid-run, unlike the Result view).
func (e *Engine) Telemetry() obs.Snapshot { return e.counters.Snapshot() }

// Run executes the protocol to completion under the given driver and
// returns the result. It is the one-call form of NewEngine + Drive +
// Finalize that protocol packages use without naming a concrete driver.
func Run(nodes []Node, cfg Config, d Driver) (*Result, error) {
	if d == nil {
		return nil, fmt.Errorf("round: nil driver")
	}
	e, err := NewEngine(nodes, cfg)
	if err != nil {
		return nil, err
	}
	if err := d.Drive(e); err != nil {
		return nil, err
	}
	return e.Finalize(), nil
}

// Reference is the canonical inline schedule: every node stepped on the
// calling goroutine, in node-ID order. It is the executable form of the
// Driver contract and the baseline every other driver must be
// result-identical to (the round barrier already serializes all
// interleavings). internal/netsim re-exports it as the Sequential driver.
type Reference struct{}

var _ Driver = Reference{}

// Drive implements Driver.
func (Reference) Drive(e *Engine) error {
	n := e.N()
	for r := 1; r <= e.Rounds(); r++ {
		e.Deliver()
		for i := 0; i < n; i++ {
			e.Collect(i, r, e.Node(i).Step(r, e.Inbox(i)))
		}
	}
	e.Deliver()
	for i := 0; i < n; i++ {
		e.Node(i).Finish(e.Inbox(i))
	}
	return nil
}
