// Package round is the driver-agnostic core of the synchronous round
// engine: the pure round semantics every driver shares, with no opinion on
// *how* rounds are driven (goroutines, an inline loop, or one OS process
// per node exchanging frames over TCP).
//
// The package captures the three assumptions of the paper's §4 as
// machine-checkable contracts:
//
//	(a) messages between fault-free nodes are delivered correctly — a
//	    driver delivers every collected message unless the configured
//	    Channel drops it;
//	(b) absence of a message is detectable — a message a driver cannot
//	    deliver in time simply never enters the round's inbox, and
//	    protocols substitute the default value V_d;
//	(c) the source of a message is identified — Collect stamps every
//	    message's From field with the true sender, so even Byzantine nodes
//	    cannot spoof their identity.
//
// An Engine holds one run's state: the node complement, the interposing
// Channel, per-node inboxes, and the accounting that becomes the Result. A
// Driver walks the engine through its schedule:
//
//	for r := 1; r <= e.Rounds(); r++ {
//		e.Deliver()                                  // round-(r-1) sends
//		for i := 0; i < e.N(); i++ {                 // any interleaving
//			out := e.Node(i).Step(r, e.Inbox(i))
//			e.Collect(i, r, out)                 // serialized
//		}
//	}
//	e.Deliver()                                          // final delivery
//	for i := 0; i < e.N(); i++ { e.Node(i).Finish(e.Inbox(i)) }
//
// Step calls may run concurrently (each node is only ever stepped by one
// goroutine at a time); Deliver, Collect, and Finalize must be serialized
// by the driver. The in-process drivers live in internal/netsim; the
// distributed driver in internal/cluster reuses the same per-node
// semantics (inbox sorting, sender stamping, byte accounting) against real
// sockets.
package round

import (
	"fmt"

	"degradable/internal/obs"
	"degradable/internal/types"
)

// Node is a protocol participant. The engine calls Step for rounds 1..R,
// passing the messages sent to the node in the previous round (round 1 gets
// an empty inbox); the returned messages are delivered at the start of the
// next round. After round R, Finish delivers the final batch, then Decide is
// read. Implementations need not be safe for concurrent use; every driver
// serializes all calls to a given node.
//
// The inbox slice is only valid for the duration of the Step or Finish call:
// drivers reuse the delivery buffers across rounds. Implementations that
// retain messages must copy them (all in-tree nodes absorb values into their
// EIG tree and retain nothing).
//
// Drivers may differ in physical delivery (shared memory versus TCP frames),
// so implementations must tolerate exactly what the paper's network model
// allows: a well-formed message may arrive more than once (duplication
// faults; ingestion must be idempotent), may never arrive (detectable
// absence; substitute V_d), and inbox ordering is always the deterministic
// types.SortMessages order regardless of arrival order.
type Node interface {
	ID() types.NodeID
	Step(round int, inbox []types.Message) []types.Message
	Finish(inbox []types.Message)
	Decide() types.Value
}

// Channel interposes on message delivery. Deliver may rewrite the message
// (e.g. a relay network corrupting values in flight) or drop it entirely by
// returning false.
type Channel interface {
	Deliver(m types.Message) (types.Message, bool)
}

// Expander is an optional Channel extension for channels that can deliver a
// message more than once (duplication faults, as injected by the chaos
// engine). When the configured Channel implements Expander, the engine calls
// DeliverAll instead of Deliver; every returned message is delivered and
// counted. An empty slice drops the message.
type Expander interface {
	Channel
	DeliverAll(m types.Message) []types.Message
}

// PerfectChannel delivers every message unchanged: the complete-graph,
// fully synchronous assumption of §4.
type PerfectChannel struct{}

// Deliver implements Channel.
func (PerfectChannel) Deliver(m types.Message) (types.Message, bool) { return m, true }

var _ Channel = PerfectChannel{}

// Config controls a run. It is pure round semantics: driver selection (and
// any driver-specific tuning such as round deadlines) lives with the driver.
type Config struct {
	// Rounds is the number of message rounds (R). The engine performs R
	// Step deliveries plus a Finish delivery per node.
	Rounds int
	// Channel interposes on deliveries; nil means PerfectChannel.
	Channel Channel
	// RecordViews captures each node's full delivered-message transcript in
	// the result. Used by the lower-bound indistinguishability checks and
	// the cross-driver differential tests.
	RecordViews bool
	// Trace, when non-nil, observes every delivered message.
	Trace func(types.Message)
	// Sink, when non-nil, receives structured round events (round open and
	// close) regardless of which driver runs the schedule — the event stream
	// is a function of the round semantics alone, so deterministic drivers
	// produce identical streams.
	Sink obs.Sink
}

// Names of the engine's obs counters, in index order.
const (
	CounterMessages  = iota // sends accepted by Collect
	CounterDelivered        // messages delivered into inboxes
	CounterBytes            // approximate wire volume delivered
	numCounters
)

// CounterNames are the unified-snapshot names of the engine's counters.
var CounterNames = []string{"round_messages_total", "round_delivered_total", "round_bytes_total"}

// Result summarizes a run.
type Result struct {
	// Decisions maps every node to its decided value.
	Decisions map[types.NodeID]types.Value
	// Messages is the total number of messages sent (before channel drops).
	Messages int
	// Delivered is the total number of messages actually delivered.
	Delivered int
	// Bytes approximates the wire volume of delivered traffic: 8 bytes of
	// value plus 4 per relay-path element per message.
	Bytes int
	// PerRound is the number of messages sent in each round, indexed from
	// round 1 at position 0.
	PerRound []int
	// Views is each node's delivered transcript (only when RecordViews).
	Views map[types.NodeID][]types.Message
}

// MessageBytes is the wire-volume approximation used by every driver's
// accounting: 8 bytes of value plus 4 per relay-path element.
func MessageBytes(m types.Message) int { return 8 + 4*len(m.Path) }

// Driver executes an engine's round schedule. Drive must follow the
// contract documented in the package comment: R rounds of Deliver / Step /
// Collect, a final Deliver, then Finish for every node. Run handles engine
// construction and Finalize; a Driver only supplies the control flow (and
// whatever concurrency it wants for the Step calls).
type Driver interface {
	Drive(e *Engine) error
}

// Engine is one run's round state: nodes, channel interposition, inboxes,
// and accounting. Methods are not safe for concurrent use except Node and
// Inbox (immutable between Deliver calls); drivers serialize Deliver and
// Collect.
type Engine struct {
	cfg      Config
	byID     []Node
	ch       Channel
	expander Expander

	res      *Result
	counters *obs.CounterSet
	curRound int
	inboxes  [][]types.Message
	pending  []types.Message
}

// NewEngine validates the node complement and builds a run's engine. Nodes
// must have distinct IDs in [0, len(nodes)).
func NewEngine(nodes []Node, cfg Config) (*Engine, error) {
	n := len(nodes)
	if n == 0 {
		return nil, fmt.Errorf("round: no nodes")
	}
	if cfg.Rounds < 1 {
		return nil, fmt.Errorf("round: rounds must be >= 1, got %d", cfg.Rounds)
	}
	byID := make([]Node, n)
	for _, nd := range nodes {
		id := nd.ID()
		if id < 0 || int(id) >= n {
			return nil, fmt.Errorf("round: node ID %d out of range [0,%d)", int(id), n)
		}
		if byID[int(id)] != nil {
			return nil, fmt.Errorf("round: duplicate node ID %d", int(id))
		}
		byID[int(id)] = nd
	}
	ch := cfg.Channel
	if ch == nil {
		ch = PerfectChannel{}
	}
	e := &Engine{
		cfg:  cfg,
		byID: byID,
		ch:   ch,
		res: &Result{
			Decisions: make(map[types.NodeID]types.Value, n),
			PerRound:  make([]int, cfg.Rounds),
		},
		// inboxes is allocated once and reused every round: each per-node
		// slice is truncated and refilled in place, so after the first
		// couple of rounds delivery stops allocating entirely. Safe because
		// the round barrier guarantees no Step/Finish call is in flight
		// during delivery and nodes do not retain their inbox (see the Node
		// contract).
		inboxes:  make([][]types.Message, n),
		counters: obs.NewCounterSet(CounterNames...),
	}
	e.expander, _ = ch.(Expander)
	if cfg.RecordViews {
		e.res.Views = make(map[types.NodeID][]types.Message, n)
	}
	return e, nil
}

// Restart rearms the engine for a fresh run on the same configuration,
// retaining every allocated buffer (inboxes, pending queue, result maps).
// nodes replaces the complement — it must have the same count, since the
// shape (and Rounds) is fixed at construction; entries may differ from the
// previous run (the serving runtime swaps honest nodes for Byzantine
// wrappers per instance). A restarted engine is observationally identical
// to a newly constructed one, which is what lets the batch hot loop run
// instance after instance without allocating.
func (e *Engine) Restart(nodes []Node) error {
	n := len(e.byID)
	if len(nodes) != n {
		return fmt.Errorf("round: restart with %d nodes, engine built for %d", len(nodes), n)
	}
	for i := range e.byID {
		e.byID[i] = nil
	}
	for _, nd := range nodes {
		id := nd.ID()
		if id < 0 || int(id) >= n {
			return fmt.Errorf("round: node ID %d out of range [0,%d)", int(id), n)
		}
		if e.byID[int(id)] != nil {
			return fmt.Errorf("round: duplicate node ID %d", int(id))
		}
		e.byID[int(id)] = nd
	}
	clear(e.res.Decisions)
	e.res.Messages, e.res.Delivered, e.res.Bytes = 0, 0, 0
	for i := range e.res.PerRound {
		e.res.PerRound[i] = 0
	}
	if e.res.Views != nil {
		clear(e.res.Views)
	}
	e.counters.Reset()
	e.curRound = 0
	for i := range e.inboxes {
		e.inboxes[i] = e.inboxes[i][:0]
	}
	e.pending = e.pending[:0]
	return nil
}

// N returns the node count.
func (e *Engine) N() int { return len(e.byID) }

// Rounds returns the number of message rounds.
func (e *Engine) Rounds() int { return e.cfg.Rounds }

// Node returns the participant with ID i.
func (e *Engine) Node(i int) Node { return e.byID[i] }

// Deliver moves the pending sends through the channel into the per-node
// inboxes, sorting each inbox deterministically and recording views. It
// must be called exactly once per round (before the round's Step calls) and
// once more before the Finish calls.
func (e *Engine) Deliver() {
	for i := range e.inboxes {
		e.inboxes[i] = e.inboxes[i][:0]
	}
	delivered := 0
	bytes := 0
	for _, m := range e.pending {
		var copies []types.Message
		if e.expander != nil {
			copies = e.expander.DeliverAll(m)
		} else if dm, ok := e.ch.Deliver(m); ok {
			copies = []types.Message{dm}
		}
		for _, dm := range copies {
			delivered++
			bytes += MessageBytes(dm)
			if e.cfg.Trace != nil {
				e.cfg.Trace(dm)
			}
			e.inboxes[int(dm.To)] = append(e.inboxes[int(dm.To)], dm)
		}
	}
	e.counters.Add(CounterDelivered, uint64(delivered))
	e.counters.Add(CounterBytes, uint64(bytes))
	e.pending = e.pending[:0]
	for i := range e.inboxes {
		types.SortMessages(e.inboxes[i])
		if e.cfg.RecordViews {
			e.res.Views[types.NodeID(i)] = append(e.res.Views[types.NodeID(i)], e.inboxes[i]...)
		}
	}
	if e.cfg.Sink != nil && e.curRound > 0 {
		e.cfg.Sink.Emit(obs.Event{
			Kind: obs.EvRoundClose, Node: -1, Round: int32(e.curRound),
			A: int64(e.sentIn(e.curRound)),
		})
	}
	e.curRound++
	if e.cfg.Sink != nil {
		e.cfg.Sink.Emit(obs.Event{
			Kind: obs.EvRoundOpen, Node: -1, Round: int32(e.curRound),
			A: int64(delivered),
		})
	}
}

// sentIn returns the number of sends collected in round r (0 for the final
// delivery-only phase past round R).
func (e *Engine) sentIn(r int) int {
	if r >= 1 && r <= len(e.res.PerRound) {
		return e.res.PerRound[r-1]
	}
	return 0
}

// Inbox returns node i's current delivery (valid until the next Deliver).
func (e *Engine) Inbox(i int) []types.Message { return e.inboxes[i] }

// Collect stamps, validates, and queues node i's round sends, enforcing
// assumption (c): the true source is stamped, so a Byzantine node cannot
// spoof its identity. Malformed and self-addressed sends are dropped.
func (e *Engine) Collect(i, round int, out []types.Message) {
	n := len(e.byID)
	for _, m := range out {
		m.From = types.NodeID(i)
		m.Round = round
		if m.To < 0 || int(m.To) >= n || m.To == m.From {
			continue // drop malformed or self-addressed sends
		}
		e.counters.Inc(CounterMessages)
		e.res.PerRound[round-1]++
		e.pending = append(e.pending, m)
	}
}

// Finalize reads every node's decision and returns the run's result,
// materializing the obs-backed accounting into the Result view. It must be
// called once, after the driver's Finish calls.
func (e *Engine) Finalize() *Result {
	if e.cfg.Sink != nil && e.curRound > 0 {
		e.cfg.Sink.Emit(obs.Event{
			Kind: obs.EvRoundClose, Node: -1, Round: int32(e.curRound),
			A: int64(e.sentIn(e.curRound)),
		})
	}
	for i, nd := range e.byID {
		e.res.Decisions[types.NodeID(i)] = nd.Decide()
	}
	e.res.Messages = int(e.counters.Get(CounterMessages))
	e.res.Delivered = int(e.counters.Get(CounterDelivered))
	e.res.Bytes = int(e.counters.Get(CounterBytes))
	return e.res
}

// Telemetry returns the engine's live accounting as the unified snapshot
// schema (readable mid-run, unlike the Result view).
func (e *Engine) Telemetry() obs.Snapshot { return e.counters.Snapshot() }

// Run executes the protocol to completion under the given driver and
// returns the result. It is the one-call form of NewEngine + Drive +
// Finalize that protocol packages use without naming a concrete driver.
func Run(nodes []Node, cfg Config, d Driver) (*Result, error) {
	if d == nil {
		return nil, fmt.Errorf("round: nil driver")
	}
	e, err := NewEngine(nodes, cfg)
	if err != nil {
		return nil, err
	}
	if err := d.Drive(e); err != nil {
		return nil, err
	}
	return e.Finalize(), nil
}

// Reference is the canonical inline schedule: every node stepped on the
// calling goroutine, in node-ID order. It is the executable form of the
// Driver contract and the baseline every other driver must be
// result-identical to (the round barrier already serializes all
// interleavings). internal/netsim re-exports it as the Sequential driver.
type Reference struct{}

var _ Driver = Reference{}

// Drive implements Driver.
func (Reference) Drive(e *Engine) error {
	n := e.N()
	for r := 1; r <= e.Rounds(); r++ {
		e.Deliver()
		for i := 0; i < n; i++ {
			e.Collect(i, r, e.Node(i).Step(r, e.Inbox(i)))
		}
	}
	e.Deliver()
	for i := 0; i < n; i++ {
		e.Node(i).Finish(e.Inbox(i))
	}
	return nil
}
