package round

import (
	"reflect"
	"testing"

	"degradable/internal/types"
)

// echoNode is a minimal Node for exercising the engine directly: round 1 it
// sends its scripted messages, later rounds it sends nothing, and it decides
// the count of messages it ever received.
type echoNode struct {
	id      types.NodeID
	sends   []types.Message
	got     []types.Message
	stepped []int
}

func (n *echoNode) ID() types.NodeID { return n.id }

func (n *echoNode) Step(round int, inbox []types.Message) []types.Message {
	n.stepped = append(n.stepped, round)
	for _, m := range inbox {
		n.got = append(n.got, m) // copy: the inbox buffer is reused
	}
	if round == 1 {
		return n.sends
	}
	return nil
}

func (n *echoNode) Finish(inbox []types.Message) {
	for _, m := range inbox {
		n.got = append(n.got, m)
	}
}

func (n *echoNode) Decide() types.Value { return types.Value(len(n.got)) }

func msg(to types.NodeID, v types.Value) types.Message {
	return types.Message{To: to, Value: v}
}

func TestNewEngineValidation(t *testing.T) {
	ok := []Node{&echoNode{id: 0}, &echoNode{id: 1}}
	cases := []struct {
		name  string
		nodes []Node
		cfg   Config
	}{
		{"no nodes", nil, Config{Rounds: 1}},
		{"zero rounds", ok, Config{}},
		{"id out of range", []Node{&echoNode{id: 0}, &echoNode{id: 7}}, Config{Rounds: 1}},
		{"negative id", []Node{&echoNode{id: -1}, &echoNode{id: 0}}, Config{Rounds: 1}},
		{"duplicate id", []Node{&echoNode{id: 1}, &echoNode{id: 1}}, Config{Rounds: 1}},
	}
	for _, tc := range cases {
		if _, err := NewEngine(tc.nodes, tc.cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := NewEngine(ok, Config{Rounds: 2}); err != nil {
		t.Errorf("valid engine rejected: %v", err)
	}
}

// TestCollectStampsAndFilters pins assumption (c) and the drop rules: From
// and Round are overwritten with the truth, and malformed or self-addressed
// sends never enter the run or its counters.
func TestCollectStampsAndFilters(t *testing.T) {
	nodes := []Node{
		&echoNode{id: 0, sends: []types.Message{
			{To: 1, From: 9, Round: 9, Value: 42}, // lies about source and round
			{To: 0, Value: 1},                     // self-addressed: dropped
			{To: -1, Value: 2},                    // out of range: dropped
			{To: 3, Value: 3},                     // out of range: dropped
		}},
		&echoNode{id: 1},
		&echoNode{id: 2},
	}
	res, err := Run(nodes, Config{Rounds: 1}, Reference{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 1 || res.Delivered != 1 || !reflect.DeepEqual(res.PerRound, []int{1}) {
		t.Fatalf("accounting: messages=%d delivered=%d perRound=%v", res.Messages, res.Delivered, res.PerRound)
	}
	got := nodes[1].(*echoNode).got
	if len(got) != 1 || got[0].From != 0 || got[0].Round != 1 || got[0].Value != 42 {
		t.Fatalf("delivery = %+v, want From=0 Round=1 Value=42", got)
	}
}

// TestDeliverSortsInbox pins the deterministic inbox order every driver
// must reproduce.
func TestDeliverSortsInbox(t *testing.T) {
	nodes := []Node{
		&echoNode{id: 0, sends: []types.Message{msg(2, 10)}},
		&echoNode{id: 1, sends: []types.Message{msg(2, 20)}},
		&echoNode{id: 2},
	}
	var order []types.NodeID
	_, err := Run(nodes, Config{Rounds: 2, Trace: func(m types.Message) {
		order = append(order, m.From)
	}}, Reference{})
	if err != nil {
		t.Fatal(err)
	}
	got := nodes[2].(*echoNode).got
	if len(got) != 2 || got[0].From != 0 || got[1].From != 1 {
		t.Fatalf("inbox not in SortMessages order: %+v", got)
	}
	if len(order) != 2 {
		t.Fatalf("trace saw %d deliveries, want 2", len(order))
	}
}

// TestChannelAndExpander pins the two delivery paths: a plain Channel can
// drop, and an Expander can duplicate (each copy delivered and counted).
func TestChannelAndExpander(t *testing.T) {
	build := func(ch Channel) (*Result, *echoNode) {
		dst := &echoNode{id: 1}
		nodes := []Node{&echoNode{id: 0, sends: []types.Message{msg(1, 5)}}, dst}
		res, err := Run(nodes, Config{Rounds: 1, Channel: ch}, Reference{})
		if err != nil {
			t.Fatal(err)
		}
		return res, dst
	}

	res, dst := build(FilterChannel{Keep: func(types.Message) bool { return false }})
	if res.Messages != 1 || res.Delivered != 0 || len(dst.got) != 0 {
		t.Errorf("drop-all: messages=%d delivered=%d got=%d", res.Messages, res.Delivered, len(dst.got))
	}

	res, dst = build(dupChannel{})
	if res.Messages != 1 || res.Delivered != 2 || len(dst.got) != 2 {
		t.Errorf("duplicate: messages=%d delivered=%d got=%d", res.Messages, res.Delivered, len(dst.got))
	}
	if want := 2 * MessageBytes(msg(1, 5)); res.Bytes != want {
		t.Errorf("bytes=%d, want %d", res.Bytes, want)
	}
}

type dupChannel struct{}

func (dupChannel) Deliver(m types.Message) (types.Message, bool) { return m, true }
func (dupChannel) DeliverAll(m types.Message) []types.Message {
	return []types.Message{m, m}
}

// TestReferenceSchedule pins the Driver contract end to end: R Step calls
// per node in order, views recorded per round, decisions collected by
// Finalize.
func TestReferenceSchedule(t *testing.T) {
	nodes := []Node{
		&echoNode{id: 0, sends: []types.Message{msg(1, 7), msg(2, 8)}},
		&echoNode{id: 1},
		&echoNode{id: 2},
	}
	res, err := Run(nodes, Config{Rounds: 3, RecordViews: true}, Reference{})
	if err != nil {
		t.Fatal(err)
	}
	for _, nd := range nodes {
		if got := nd.(*echoNode).stepped; !reflect.DeepEqual(got, []int{1, 2, 3}) {
			t.Errorf("node %d stepped %v, want [1 2 3]", nd.ID(), got)
		}
	}
	if res.Decisions[0] != 0 || res.Decisions[1] != 1 || res.Decisions[2] != 1 {
		t.Errorf("decisions = %v", res.Decisions)
	}
	if len(res.Views[1]) != 1 || res.Views[1][0].Value != 7 {
		t.Errorf("views[1] = %+v", res.Views[1])
	}
}

func TestRunNilDriver(t *testing.T) {
	if _, err := Run([]Node{&echoNode{id: 0}}, Config{Rounds: 1}, nil); err == nil {
		t.Error("nil driver accepted")
	}
}
