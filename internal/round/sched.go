package round

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"degradable/internal/types"
)

// Pending is one queued send awaiting delivery: the message plus the global
// enqueue ticket the scheduler stamped it with. Policies see the ticket so
// seeded decisions (per-message delay draws) are a function of the message's
// position in the causal stream, not of slice indices that shift as the
// queue drains.
type Pending struct {
	M   types.Message
	Seq uint64
}

// Policy chooses which queued send the scheduler delivers next. It is the
// whole difference between the synchronous and asynchronous worlds:
//
//   - Lockstep delivers in enqueue order, and the drivers' barrier (calling
//     Engine.Deliver once per round) closes each round at its deadline — the
//     paper's §4 synchronous model as a scheduling policy.
//   - FIFO, Reorder, Delay, Adversarial, and Starve order deliveries with no
//     barrier at all; RunAsync drives them one delivery at a time, which is
//     the asynchronous model (unbounded delay and reordering, §6.1's
//     relaxed-timeout half-step taken the rest of the way).
//
// Next returns an index into queue, or -1 to withhold every remaining send
// (the adversary refuses to schedule anything; the run ends undecided). tick
// is the number of deliveries performed so far, the scheduler's only notion
// of time. Policies may be stateful (seeded rngs); a fresh policy plus an
// equal seed replays the identical schedule.
type Policy interface {
	Next(tick uint64, queue []Pending) int
}

// Lockstep delivers strictly in enqueue order. It is the policy the
// synchronous Engine drains each round under: combined with the drivers'
// round barrier it reproduces the historical lockstep semantics exactly
// (deadline-closed rounds), which is what keeps the cross-driver
// differential matrix byte-identical across the scheduler-core refactor.
type Lockstep struct{}

// Next implements Policy.
func (Lockstep) Next(_ uint64, queue []Pending) int {
	if len(queue) == 0 {
		return -1
	}
	return 0
}

// FIFO delivers in enqueue order with no barrier: the kindest asynchronous
// scheduler, and the baseline the adversarial ones are benchmarked against.
type FIFO struct{}

// Next implements Policy.
func (FIFO) Next(_ uint64, queue []Pending) int {
	if len(queue) == 0 {
		return -1
	}
	return 0
}

// Reorder delivers a uniformly random queued send each step, seeded: the
// canonical "messages arrive in any order" adversary.
type Reorder struct{ rng *rand.Rand }

// NewReorder returns a seeded uniform-reordering policy.
func NewReorder(seed int64) *Reorder {
	return &Reorder{rng: rand.New(rand.NewSource(seed))}
}

// Next implements Policy.
func (p *Reorder) Next(_ uint64, queue []Pending) int {
	if len(queue) == 0 {
		return -1
	}
	return p.rng.Intn(len(queue))
}

// Delay holds each send back for a seeded per-message number of scheduler
// ticks (up to Max), then delivers ready sends in enqueue order. Every send
// is eventually delivered — delay is unbounded relative to the protocol but
// the schedule is fair — so fault-free runs still terminate, just far from
// FIFO order.
type Delay struct {
	seed int64
	// Max is the largest per-message hold in ticks (default 16).
	Max uint64
}

// NewDelay returns a seeded bounded-hold delay policy.
func NewDelay(seed int64, max uint64) *Delay {
	if max == 0 {
		max = 16
	}
	return &Delay{seed: seed, Max: max}
}

// hold derives message seq's hold, deterministically per seed.
func (p *Delay) hold(seq uint64) uint64 {
	return splitmix(uint64(p.seed)^(seq*0x9e3779b97f4a7c15)) % (p.Max + 1)
}

// Next implements Policy: the first ready send in enqueue order, else the
// send with the earliest release (so the queue always progresses).
func (p *Delay) Next(tick uint64, queue []Pending) int {
	if len(queue) == 0 {
		return -1
	}
	best, bestRel := -1, uint64(0)
	for i, pm := range queue {
		rel := pm.Seq + p.hold(pm.Seq)
		if rel <= tick {
			return i
		}
		if best == -1 || rel < bestRel {
			best, bestRel = i, rel
		}
	}
	return best
}

// Adversarial is the worst-case seeded scheduler the async benchmarks run
// against: it favours the newest queued send (maximal reordering — late
// messages overtake the whole causal prefix) and otherwise picks uniformly,
// so quorum certificates assemble from the least convenient interleavings.
type Adversarial struct{ rng *rand.Rand }

// NewAdversarial returns a seeded adversarial (LIFO-biased) policy.
func NewAdversarial(seed int64) *Adversarial {
	return &Adversarial{rng: rand.New(rand.NewSource(seed))}
}

// Next implements Policy.
func (p *Adversarial) Next(_ uint64, queue []Pending) int {
	if len(queue) == 0 {
		return -1
	}
	if p.rng.Intn(2) == 0 {
		return len(queue) - 1
	}
	return p.rng.Intn(len(queue))
}

// Starve targets one node: sends addressed to Target are withheld while
// anything else is deliverable, and withheld forever once only they remain.
// The starved node never hears from the network — the targeted-starvation
// chaos axis proving asynchronous safety needs no liveness: everyone else
// may certify and decide, the victim must simply never be forced into a
// conflicting decision.
type Starve struct{ Target types.NodeID }

// Next implements Policy.
func (p Starve) Next(_ uint64, queue []Pending) int {
	for i, pm := range queue {
		if pm.M.To != p.Target {
			return i
		}
	}
	return -1
}

var (
	_ Policy = Lockstep{}
	_ Policy = FIFO{}
	_ Policy = (*Reorder)(nil)
	_ Policy = (*Delay)(nil)
	_ Policy = (*Adversarial)(nil)
	_ Policy = Starve{}
)

// Policy spec names accepted by ParsePolicy (scenario JSON's "sched" field
// and cmd/chaos -sched use this grammar).
const (
	SchedFIFO        = "fifo"
	SchedReorder     = "reorder"
	SchedDelay       = "delay"
	SchedAdversarial = "adversarial"
	SchedStarve      = "starve"
)

// ParsePolicy builds a scheduling policy from its spec string:
//
//	""            FIFO (the default asynchronous schedule)
//	fifo          enqueue order, no barrier
//	reorder       seeded uniform reordering
//	delay[:K]     seeded per-message holds up to K ticks (default 16)
//	adversarial   seeded LIFO-biased worst-case reordering
//	starve:ID     withhold every delivery to node ID
//
// seed drives every coin flip, so equal spec + seed replays the identical
// schedule.
func ParsePolicy(spec string, seed int64) (Policy, error) {
	name, arg, hasArg := strings.Cut(spec, ":")
	switch name {
	case "", SchedFIFO:
		return FIFO{}, nil
	case SchedReorder:
		return NewReorder(seed), nil
	case SchedDelay:
		var max uint64
		if hasArg {
			v, err := strconv.ParseUint(arg, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("round: bad delay bound in sched %q: %v", spec, err)
			}
			max = v
		}
		return NewDelay(seed, max), nil
	case SchedAdversarial:
		return NewAdversarial(seed), nil
	case SchedStarve:
		if !hasArg {
			return nil, fmt.Errorf("round: sched %q needs a target node (starve:ID)", spec)
		}
		id, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("round: bad starve target in sched %q: %v", spec, err)
		}
		return Starve{Target: types.NodeID(id)}, nil
	default:
		return nil, fmt.Errorf("round: unknown sched %q", spec)
	}
}

// splitmix is the 64-bit splitmix finalizer, used for per-message seeded
// draws without allocating an rng per message.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Scheduler is the event-scheduler core every execution mode shares: a
// deterministic delivery queue threaded through the Channel/Expander
// interposition. The synchronous Engine drains it to quiescence under
// Lockstep once per round (the barrier is the drivers' Deliver call, not the
// scheduler's shape); RunAsync pulls one policy-chosen delivery at a time
// with no barrier at all. Either way a seed fully determines the delivery
// order, which is what makes asynchronous chaos scenarios recordable,
// replayable, and shrinkable like every other axis.
//
// A Scheduler is not safe for concurrent use; the engine (or async run)
// serializes all calls.
type Scheduler struct {
	policy   Policy
	ch       Channel
	expander Expander

	queue []Pending
	seq   uint64
	tick  uint64
}

// NewScheduler builds a scheduler over the given policy and channel. A nil
// policy means Lockstep; a nil channel means PerfectChannel.
func NewScheduler(policy Policy, ch Channel) *Scheduler {
	if policy == nil {
		policy = Lockstep{}
	}
	if ch == nil {
		ch = PerfectChannel{}
	}
	s := &Scheduler{policy: policy, ch: ch}
	s.expander, _ = ch.(Expander)
	return s
}

// Enqueue queues one validated, stamped send for delivery.
func (s *Scheduler) Enqueue(m types.Message) {
	s.queue = append(s.queue, Pending{M: m, Seq: s.seq})
	s.seq++
}

// Len returns the number of queued sends.
func (s *Scheduler) Len() int { return len(s.queue) }

// Reset rearms the scheduler for a fresh run, retaining the queue buffer
// (the batch hot loop reuses engines without allocating).
func (s *Scheduler) Reset() {
	s.queue = s.queue[:0]
	s.seq = 0
	s.tick = 0
}

// Next asks the policy for one send, routes it through the channel, and
// invokes deliver for every physical copy (an Expander may duplicate or
// drop; a plain Channel delivers at most once). It returns false when the
// queue is empty or the policy withholds every remaining send — Starved
// distinguishes the two. Each policy decision advances the scheduler's
// tick, delivered or dropped, so seeded schedules are insensitive to
// channel behaviour.
func (s *Scheduler) Next(deliver func(types.Message)) bool {
	idx := s.policy.Next(s.tick, s.queue)
	if idx < 0 || idx >= len(s.queue) {
		return false
	}
	m := s.queue[idx].M
	s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
	s.tick++
	if s.expander != nil {
		for _, dm := range s.expander.DeliverAll(m) {
			deliver(dm)
		}
	} else if dm, ok := s.ch.Deliver(m); ok {
		deliver(dm)
	}
	return true
}

// Starved reports whether sends remain queued — after Next returns false,
// it distinguishes a withholding policy (true) from an empty queue (false).
func (s *Scheduler) Starved() bool { return len(s.queue) > 0 }

// Drain runs the policy to quiescence, delivering until the queue empties
// or the policy withholds the rest. The synchronous Engine calls it exactly
// once per round: drain-then-barrier under Lockstep is precisely the old
// lockstep delivery loop, now expressed as a policy over the shared core.
// deliver must not Enqueue — at a round barrier no Step call is in flight,
// so nothing can send during delivery (asynchronous runs, where a delivery
// does trigger sends, go through Next instead).
func (s *Scheduler) Drain(deliver func(types.Message)) {
	if _, ok := s.policy.(Lockstep); ok {
		// Fast path: the hot loop's policy is position-free, so drain the
		// queue in place without per-delivery removals (the generic path is
		// quadratic in queue length).
		q := s.queue
		s.queue = s.queue[:0]
		for _, pm := range q {
			s.tick++
			if s.expander != nil {
				for _, dm := range s.expander.DeliverAll(pm.M) {
					deliver(dm)
				}
			} else if dm, ok := s.ch.Deliver(pm.M); ok {
				deliver(dm)
			}
		}
		return
	}
	for s.Next(deliver) {
	}
}
