package round

import (
	"fmt"
	"reflect"
	"testing"

	"degradable/internal/types"
)

// drainOrder runs a policy-driven scheduler over the given sends and
// returns the delivery order.
func drainOrder(t *testing.T, p Policy, sends []types.Message) []types.Message {
	t.Helper()
	s := NewScheduler(p, nil)
	for _, m := range sends {
		s.Enqueue(m)
	}
	var got []types.Message
	s.Drain(func(m types.Message) { got = append(got, m) })
	return got
}

func sends(n int) []types.Message {
	out := make([]types.Message, n)
	for i := range out {
		out[i] = types.Message{From: 0, To: types.NodeID(1 + i%3), Value: types.Value(i)}
	}
	return out
}

func TestLockstepAndFIFOPreserveEnqueueOrder(t *testing.T) {
	in := sends(17)
	for _, p := range []Policy{Lockstep{}, FIFO{}} {
		got := drainOrder(t, p, in)
		if !reflect.DeepEqual(got, in) {
			t.Errorf("%T: delivery order differs from enqueue order", p)
		}
	}
}

func TestSeededPoliciesReplayIdentically(t *testing.T) {
	in := sends(23)
	mks := map[string]func() Policy{
		"reorder":     func() Policy { return NewReorder(7) },
		"delay":       func() Policy { return NewDelay(7, 8) },
		"adversarial": func() Policy { return NewAdversarial(7) },
	}
	for name, mk := range mks {
		a := drainOrder(t, mk(), in)
		b := drainOrder(t, mk(), in)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed, different schedule", name)
		}
		if len(a) != len(in) {
			t.Errorf("%s: delivered %d of %d (non-withholding policies must deliver everything)", name, len(a), len(in))
		}
	}
	if a, b := drainOrder(t, NewReorder(1), in), drainOrder(t, NewReorder(2), in); reflect.DeepEqual(a, b) {
		t.Error("reorder: different seeds produced the same schedule (suspicious)")
	}
}

func TestStarveWithholdsOnlyTheTarget(t *testing.T) {
	in := sends(12) // recipients cycle 1,2,3
	s := NewScheduler(Starve{Target: 2}, nil)
	for _, m := range in {
		s.Enqueue(m)
	}
	var got []types.Message
	s.Drain(func(m types.Message) { got = append(got, m) })
	for _, m := range got {
		if m.To == 2 {
			t.Fatalf("starved node 2 received %v", m)
		}
	}
	if !s.Starved() {
		t.Fatal("scheduler should report starvation: node-2 sends remain queued")
	}
	want := 0
	for _, m := range in {
		if m.To != 2 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("delivered %d non-target sends, want %d", len(got), want)
	}
}

func TestParsePolicy(t *testing.T) {
	good := map[string]any{
		"":            FIFO{},
		"fifo":        FIFO{},
		"reorder":     (*Reorder)(nil),
		"delay":       (*Delay)(nil),
		"delay:4":     (*Delay)(nil),
		"adversarial": (*Adversarial)(nil),
		"starve:3":    Starve{},
	}
	for spec, proto := range good {
		p, err := ParsePolicy(spec, 42)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", spec, err)
			continue
		}
		if reflect.TypeOf(p) != reflect.TypeOf(proto) {
			t.Errorf("ParsePolicy(%q) = %T, want %T", spec, p, proto)
		}
	}
	if p, err := ParsePolicy("starve:3", 0); err != nil || p.(Starve).Target != 3 {
		t.Errorf("starve:3 = %v, %v", p, err)
	}
	if p, err := ParsePolicy("delay:4", 0); err != nil || p.(*Delay).Max != 4 {
		t.Errorf("delay:4 = %v, %v", p, err)
	}
	for _, spec := range []string{"starve", "starve:x", "delay:x", "lifo", "starve:1:2"} {
		if _, err := ParsePolicy(spec, 0); err == nil {
			t.Errorf("ParsePolicy(%q): accepted", spec)
		}
	}
}

// TestEnginePolicyInvariance pins the refactor's central claim: because the
// round barrier sorts every inbox, any non-withholding intra-round delivery
// order yields byte-identical synchronous results — lockstep really is just
// a policy over the scheduler core.
func TestEnginePolicyInvariance(t *testing.T) {
	build := func() []Node {
		return []Node{
			&echoNode{id: 0, sends: []types.Message{msg(1, 10), msg(2, 11), msg(3, 12)}},
			&echoNode{id: 1, sends: []types.Message{msg(0, 20), msg(2, 21)}},
			&echoNode{id: 2, sends: []types.Message{msg(3, 30)}},
			&echoNode{id: 3, sends: []types.Message{msg(0, 40), msg(1, 41), msg(2, 42)}},
		}
	}
	run := func(p Policy) string {
		res, err := Run(build(), Config{Rounds: 2, RecordViews: true, Policy: p}, Reference{})
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%v %v %d %d %d", res.Decisions, res.Views, res.Messages, res.Delivered, res.Bytes)
	}
	base := run(nil)
	for _, tc := range []struct {
		name string
		p    Policy
	}{
		{"fifo", FIFO{}},
		{"reorder", NewReorder(99)},
		{"delay", NewDelay(99, 8)},
		{"adversarial", NewAdversarial(99)},
	} {
		if got := run(tc.p); got != base {
			t.Errorf("%s policy changed synchronous results:\n got %s\nwant %s", tc.name, got, base)
		}
	}
}

// TestEngineStarvePolicyIsDetectableAbsence: a withholding policy inside
// the synchronous engine turns into per-round message loss at the barrier,
// not a hang — exactly the deadline-closed-rounds semantics.
func TestEngineStarvePolicyIsDetectableAbsence(t *testing.T) {
	nodes := []Node{
		&echoNode{id: 0, sends: []types.Message{msg(1, 10), msg(2, 11)}},
		&echoNode{id: 1, sends: []types.Message{msg(0, 20), msg(2, 21)}},
		&echoNode{id: 2, sends: []types.Message{msg(0, 30), msg(1, 31)}},
	}
	res, err := Run(nodes, Config{Rounds: 1, Policy: Starve{Target: 2}}, Reference{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Decisions[2]; got != 0 {
		t.Errorf("starved node decided %v receipts, want 0", got)
	}
	if res.Messages != 6 || res.Delivered != 4 {
		t.Errorf("messages/delivered = %d/%d, want 6/4", res.Messages, res.Delivered)
	}
}
