package routednet

import (
	"fmt"

	"degradable/internal/obs"
	"degradable/internal/round"
	"degradable/internal/topology"
	"degradable/internal/transport"
	"degradable/internal/types"
	"degradable/internal/vote"
)

// Names of the channel's obs counters, in index order.
const (
	// CounterHops counts physical link traversals (every copy, every hop;
	// direct-wire deliveries count one).
	CounterHops = iota
	// CounterDegraded counts logical deliveries whose accepted value
	// differed from the sent one.
	CounterDegraded
	numCounters
)

// CounterNames are the unified-snapshot names of the channel's counters.
var CounterNames = []string{"routed_hops_total", "routed_degraded_total"}

// Channel is a round.Channel that performs TRUE hop-by-hop forwarding: one
// token per vertex-disjoint path per logical message, each advanced a link
// at a time with Byzantine relays corrupting or dropping copies in flight,
// then VOTE(m+1, copies) acceptance at the destination. It is the
// uncompressed counterpart of transport.Channel behind the same interface,
// which is what lets every round.Driver — goroutine, sequential, cluster —
// run over an incomplete graph with real link-level accounting.
type Channel struct {
	g        *topology.Graph
	m        int
	routes   map[[2]types.NodeID][][]types.NodeID
	faulty   map[types.NodeID]transport.RelayCorruptor
	counters *obs.CounterSet
}

var _ round.Channel = (*Channel)(nil)

// NewChannel precomputes m+u+1 disjoint routes for every ordered
// non-adjacent pair. strict fails when the graph's pairwise connectivity is
// below m+u+1 (Theorem 3 necessity); loose routes over what exists, for the
// lower-bound demonstrations.
func NewChannel(g *topology.Graph, m, u int, faulty map[types.NodeID]transport.RelayCorruptor, strict bool) (*Channel, error) {
	if g == nil {
		return nil, fmt.Errorf("routednet: nil graph")
	}
	if m < 0 || u < m || u < 1 {
		return nil, fmt.Errorf("routednet: infeasible m=%d u=%d", m, u)
	}
	need := m + u + 1
	n := g.N()
	c := &Channel{
		g:        g,
		m:        m,
		routes:   make(map[[2]types.NodeID][][]types.NodeID),
		faulty:   faulty,
		counters: obs.NewCounterSet(CounterNames...),
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			s, t := types.NodeID(a), types.NodeID(b)
			if g.HasEdge(s, t) {
				continue
			}
			ps, err := g.DisjointPaths(s, t, need)
			if err != nil {
				return nil, err
			}
			if strict && len(ps) < need {
				return nil, fmt.Errorf("routednet: only %d paths for %d→%d, need %d", len(ps), a, b, need)
			}
			c.routes[[2]types.NodeID{s, t}] = ps
		}
	}
	return c, nil
}

// Stats returns the channel's accounting in the unified snapshot schema.
func (c *Channel) Stats() obs.Snapshot { return c.counters.Snapshot() }

// Deliver implements round.Channel: adjacent pairs use their direct wire
// (one hop, never degraded); everything else is forwarded token by token
// over the precomputed disjoint routes and accepted by VOTE(m+1, copies).
// An unroutable message (loose mode on a severed graph) is dropped — the
// detectable absence of §4 assumption (b).
func (c *Channel) Deliver(m types.Message) (types.Message, bool) {
	if c.g.HasEdge(m.From, m.To) {
		c.counters.Inc(CounterHops)
		return m, true
	}
	ps := c.routes[[2]types.NodeID{m.From, m.To}]
	if len(ps) == 0 {
		return types.Message{}, false
	}
	tokens := make([]*token, 0, len(ps))
	for _, route := range ps {
		tokens = append(tokens, &token{route: route, value: m.Value, orig: m})
	}
	inFlight := len(tokens)
	for inFlight > 0 {
		inFlight = 0
		for _, tk := range tokens {
			if tk.dead || tk.pos == len(tk.route)-1 {
				continue
			}
			// Advance one hop.
			tk.pos++
			c.counters.Inc(CounterHops)
			hop := tk.route[tk.pos]
			if tk.pos < len(tk.route)-1 {
				if corrupt, bad := c.faulty[hop]; bad {
					v, keep := corrupt(hop, tk.orig, tk.value)
					if !keep {
						tk.dead = true
						continue
					}
					tk.value = v
				}
				inFlight++
			}
		}
	}
	// Acceptance at the destination.
	copies := make([]types.Value, 0, len(tokens))
	for _, tk := range tokens {
		if !tk.dead {
			copies = append(copies, tk.value)
		}
	}
	accepted := vote.Vote(c.m+1, copies)
	if accepted != m.Value {
		c.counters.Inc(CounterDegraded)
	}
	m.Value = accepted
	return m, true
}
