package routednet_test

import (
	"math/rand"
	"reflect"
	"testing"

	"degradable/internal/adversary"
	"degradable/internal/core"
	"degradable/internal/netsim"
	"degradable/internal/routednet"
	"degradable/internal/spec"
	"degradable/internal/topology"
	"degradable/internal/transport"
	"degradable/internal/types"
)

// diffTransportVsRouted runs one seeded random configuration — a G(n,p)
// graph and a seeded draw of corrupted relays with matching protocol-level
// strategies — through the compressed transport channel and the hop-by-hop
// router and requires identical decision vectors. The two implementations
// factor the same Theorem 3 machinery differently (per-message path
// quorums vs physical token forwarding), so any divergence is a bug in one
// of them.
func diffTransportVsRouted(t *testing.T, seed int64, faultCount int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const n = 9
	p := core.Params{N: n, M: 1, U: 2}
	g, err := topology.Gnp(n, 0.4+rng.Float64()*0.5, rng.Int63())
	if err != nil {
		// Disconnected after every conditioning attempt: nothing to compare.
		t.Skipf("gnp: %v", err)
	}
	if faultCount > p.U {
		faultCount = p.U
	}
	strategies := make(map[types.NodeID]adversary.Strategy)
	corrupt := make(map[types.NodeID]transport.RelayCorruptor)
	var faulty []types.NodeID
	for _, v := range rng.Perm(n)[:faultCount] {
		id := types.NodeID(v)
		faulty = append(faulty, id)
		switch rng.Intn(3) {
		case 0:
			strategies[id] = adversary.Lie{Value: beta}
			corrupt[id] = transport.FlipTo(beta)
		case 1:
			strategies[id] = adversary.Crash{After: 1}
			corrupt[id] = transport.DropAll()
		default:
			strategies[id] = adversary.Lie{Value: beta + 1}
			corrupt[id] = transport.FlipTo(beta + 1)
		}
	}

	// Compressed: netsim + transport channel. Strictness follows the drawn
	// graph — below the Theorem 3 bound both sides run loose, and the
	// equivalence must hold there too (forged outcomes included).
	nodesA, err := p.Nodes(alpha)
	if err != nil {
		t.Fatal(err)
	}
	if err := adversary.Wrap(nodesA, p.N, p.Depth(), 0, alpha, strategies); err != nil {
		t.Fatal(err)
	}
	ch, err := transport.New(g, p.M, p.U, corrupt)
	strict := err == nil
	if !strict {
		if ch, err = transport.NewLoose(g, p.M, p.U, corrupt); err != nil {
			t.Fatal(err)
		}
	}
	resA, err := netsim.Run(nodesA, netsim.Config{Rounds: p.Depth(), Channel: ch})
	if err != nil {
		t.Fatal(err)
	}

	// Uncompressed: hop-by-hop routing over the same graph and relay set.
	nodesB, err := p.Nodes(alpha)
	if err != nil {
		t.Fatal(err)
	}
	if err := adversary.Wrap(nodesB, p.N, p.Depth(), 0, alpha, strategies); err != nil {
		t.Fatal(err)
	}
	resB, err := routednet.Run(nodesB, routednet.Config{
		Graph: g, M: p.M, U: p.U, Rounds: p.Depth(), Strict: strict,
		Faulty: corrupt,
	})
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(resA.Decisions, resB.Decisions) {
		t.Errorf("seed %d (strict=%v, faulty %v): decisions differ:\ncompressed %v\nhop-by-hop %v",
			seed, strict, faulty, resA.Decisions, resB.Decisions)
	}
	if strict {
		// At or above κ = m+u+1 with f ≤ u the agreed decisions must also
		// satisfy the degradable spec — Theorem 3's sufficiency direction.
		verdict := spec.Check(spec.Execution{
			M: p.M, U: p.U, Sender: 0, SenderValue: alpha,
			Faulty:    types.NewNodeSet(faulty...),
			Decisions: resB.Decisions,
		})
		if !verdict.OK {
			t.Errorf("seed %d: strict run violated %s: %s", seed, verdict.Condition, verdict.Reason)
		}
	}
}

// TestDifferentialTransportVsRouted sweeps the fuzz property over a fixed
// seed range so the differential runs on every plain `go test`, not only
// under the fuzzer.
func TestDifferentialTransportVsRouted(t *testing.T) {
	for seed := int64(0); seed < 48; seed++ {
		diffTransportVsRouted(t, seed, int(seed%3))
	}
}

// FuzzTransportVsRouted fuzzes the differential: random graphs, random
// relay corruption, both channel implementations must agree byte-for-byte
// on every node's decision.
func FuzzTransportVsRouted(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(7), uint8(1))
	f.Add(int64(42), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, faults uint8) {
		diffTransportVsRouted(t, seed, int(faults%3))
	})
}
