// Package routednet executes agreement protocols over an incompletely
// connected network with TRUE hop-by-hop forwarding: every logical message
// between non-adjacent nodes is physically split into copies, one per
// vertex-disjoint path, and each copy traverses its route one hop at a
// time, with Byzantine relays corrupting or dropping copies as they pass.
// The destination accepts the value carried by at least m+1 copies when
// unique (VOTE(m+1, copies)), else the default value.
//
// This is the uncompressed counterpart of internal/transport, which folds
// the whole traversal into a single delivery function. DESIGN.md claims the
// two are equivalent for corruption behaviours that depend only on (relay,
// message, value); the tests in this package verify that claim by running
// identical instances both ways and comparing every decision. The
// uncompressed engine also reports true link-level traffic (hop count),
// which the compressed channel can only estimate.
//
// The forwarding machinery lives in Channel, a round.Channel: any
// round.Driver can run over it (the chaos engine selects it per scenario as
// the "routed" topology mode). Run is the one-call wrapper that drives the
// reference schedule through internal/round.
package routednet

import (
	"fmt"

	"degradable/internal/netsim"
	"degradable/internal/obs"
	"degradable/internal/round"
	"degradable/internal/topology"
	"degradable/internal/transport"
	"degradable/internal/types"
)

// Config describes a routed execution.
type Config struct {
	// Graph is the physical topology.
	Graph *topology.Graph
	// M and U are the agreement thresholds (routing uses m+u+1 paths and
	// the m+1 acceptance threshold).
	M, U int
	// Faulty maps nodes to their relay corruption behaviour (protocol-level
	// Byzantine behaviour is configured on the nodes themselves).
	Faulty map[types.NodeID]transport.RelayCorruptor
	// Rounds is the number of protocol rounds.
	Rounds int
	// Strict rejects pairs with fewer than m+u+1 disjoint paths; loose
	// mode routes over what exists (for lower-bound demonstrations).
	Strict bool
}

// Result mirrors netsim.Result with link-level accounting.
type Result struct {
	// Decisions maps every node to its decision.
	Decisions map[types.NodeID]types.Value
	// LogicalMessages counts protocol-level sends.
	LogicalMessages int
	// Hops mirrors the routed_hops_total counter: physical link traversals
	// (every copy, every hop).
	//
	// Deprecated: read Obs instead; the int views predate the obs spine
	// and are kept one release for EXPERIMENTS.md flows.
	Hops int
	// Degraded mirrors the routed_degraded_total counter: logical
	// deliveries replaced by V_d (or worse) by the acceptance rule.
	//
	// Deprecated: read Obs instead.
	Degraded int
	// Obs is the channel's accounting in the unified snapshot schema
	// (routed_hops_total, routed_degraded_total).
	Obs obs.Snapshot
}

// token is one in-flight copy of a logical message.
type token struct {
	route []types.NodeID
	pos   int // index of the node currently holding the copy
	value types.Value
	orig  types.Message
	dead  bool
}

// Run executes the protocol with hop-by-hop forwarding: a Channel under the
// round engine's reference schedule. Every delivery, inbox sort, and
// decision read goes through internal/round — the same path every other
// driver uses — so routed executions stay comparable with the rest of the
// repo's instrumentation.
func Run(nodes []netsim.Node, cfg Config) (*Result, error) {
	n := len(nodes)
	if cfg.Graph != nil && n != cfg.Graph.N() {
		return nil, fmt.Errorf("routednet: %d nodes on a %d-vertex graph", n, cfg.Graph.N())
	}
	if cfg.Rounds < 1 {
		return nil, fmt.Errorf("routednet: rounds must be >= 1")
	}
	ch, err := NewChannel(cfg.Graph, cfg.M, cfg.U, cfg.Faulty, cfg.Strict)
	if err != nil {
		return nil, err
	}
	rres, err := round.Run(nodes, round.Config{Rounds: cfg.Rounds, Channel: ch}, round.Reference{})
	if err != nil {
		return nil, err
	}
	snap := ch.Stats()
	return &Result{
		Decisions:       rres.Decisions,
		LogicalMessages: rres.Messages,
		Hops:            int(snap.Counter(CounterNames[CounterHops])),
		Degraded:        int(snap.Counter(CounterNames[CounterDegraded])),
		Obs:             snap,
	}, nil
}
