// Package routednet executes agreement protocols over an incompletely
// connected network with TRUE hop-by-hop forwarding: every logical message
// between non-adjacent nodes is physically split into copies, one per
// vertex-disjoint path, and each copy traverses its route one hop at a
// time, with Byzantine relays corrupting or dropping copies as they pass.
// The destination accepts the value carried by at least m+1 copies when
// unique (VOTE(m+1, copies)), else the default value.
//
// This is the uncompressed counterpart of internal/transport, which folds
// the whole traversal into a single delivery function. DESIGN.md claims the
// two are equivalent for corruption behaviours that depend only on (relay,
// message, value); the tests in this package verify that claim by running
// identical instances both ways and comparing every decision. The
// uncompressed engine also reports true link-level traffic (hop count),
// which the compressed channel can only estimate.
package routednet

import (
	"fmt"

	"degradable/internal/netsim"
	"degradable/internal/topology"
	"degradable/internal/transport"
	"degradable/internal/types"
	"degradable/internal/vote"
)

// Config describes a routed execution.
type Config struct {
	// Graph is the physical topology.
	Graph *topology.Graph
	// M and U are the agreement thresholds (routing uses m+u+1 paths and
	// the m+1 acceptance threshold).
	M, U int
	// Faulty maps nodes to their relay corruption behaviour (protocol-level
	// Byzantine behaviour is configured on the nodes themselves).
	Faulty map[types.NodeID]transport.RelayCorruptor
	// Rounds is the number of protocol rounds.
	Rounds int
	// Strict rejects pairs with fewer than m+u+1 disjoint paths; loose
	// mode routes over what exists (for lower-bound demonstrations).
	Strict bool
}

// Result mirrors netsim.Result with link-level accounting.
type Result struct {
	// Decisions maps every node to its decision.
	Decisions map[types.NodeID]types.Value
	// LogicalMessages counts protocol-level sends.
	LogicalMessages int
	// Hops counts physical link traversals (every copy, every hop).
	Hops int
	// Degraded counts logical deliveries replaced by V_d by the
	// acceptance rule.
	Degraded int
}

// token is one in-flight copy of a logical message.
type token struct {
	route []types.NodeID
	pos   int // index of the node currently holding the copy
	value types.Value
	orig  types.Message
	dead  bool
}

// Run executes the protocol with hop-by-hop forwarding.
func Run(nodes []netsim.Node, cfg Config) (*Result, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("routednet: nil graph")
	}
	n := len(nodes)
	if n != cfg.Graph.N() {
		return nil, fmt.Errorf("routednet: %d nodes on a %d-vertex graph", n, cfg.Graph.N())
	}
	if cfg.Rounds < 1 {
		return nil, fmt.Errorf("routednet: rounds must be >= 1")
	}
	if cfg.M < 0 || cfg.U < cfg.M || cfg.U < 1 {
		return nil, fmt.Errorf("routednet: infeasible m=%d u=%d", cfg.M, cfg.U)
	}
	need := cfg.M + cfg.U + 1
	// Precompute routes for every ordered non-adjacent pair.
	routes := make(map[[2]types.NodeID][][]types.NodeID)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			s, t := types.NodeID(a), types.NodeID(b)
			if cfg.Graph.HasEdge(s, t) {
				continue
			}
			ps, err := cfg.Graph.DisjointPaths(s, t, need)
			if err != nil {
				return nil, err
			}
			if cfg.Strict && len(ps) < need {
				return nil, fmt.Errorf("routednet: only %d paths for %d→%d, need %d", len(ps), a, b, need)
			}
			routes[[2]types.NodeID{s, t}] = ps
		}
	}

	byID := make(map[types.NodeID]netsim.Node, n)
	for _, nd := range nodes {
		if _, dup := byID[nd.ID()]; dup {
			return nil, fmt.Errorf("routednet: duplicate node %d", int(nd.ID()))
		}
		byID[nd.ID()] = nd
	}

	res := &Result{Decisions: make(map[types.NodeID]types.Value, n)}
	deliverRound := func(pending []types.Message) [][]types.Message {
		inboxes := make([][]types.Message, n)
		for _, m := range pending {
			if cfg.Graph.HasEdge(m.From, m.To) {
				res.Hops++
				inboxes[int(m.To)] = append(inboxes[int(m.To)], m)
				continue
			}
			ps := routes[[2]types.NodeID{m.From, m.To}]
			if len(ps) == 0 {
				continue // unroutable
			}
			// Launch one token per path and forward to completion.
			tokens := make([]*token, 0, len(ps))
			for _, route := range ps {
				tokens = append(tokens, &token{route: route, value: m.Value, orig: m})
			}
			inFlight := len(tokens)
			for inFlight > 0 {
				inFlight = 0
				for _, tk := range tokens {
					if tk.dead || tk.pos == len(tk.route)-1 {
						continue
					}
					// Advance one hop.
					tk.pos++
					res.Hops++
					hop := tk.route[tk.pos]
					if tk.pos < len(tk.route)-1 {
						if corrupt, bad := cfg.Faulty[hop]; bad {
							v, keep := corrupt(hop, tk.orig, tk.value)
							if !keep {
								tk.dead = true
								continue
							}
							tk.value = v
						}
						inFlight++
					}
				}
			}
			// Acceptance at the destination.
			copies := make([]types.Value, 0, len(tokens))
			for _, tk := range tokens {
				if !tk.dead {
					copies = append(copies, tk.value)
				}
			}
			accepted := vote.Vote(cfg.M+1, copies)
			if accepted != m.Value {
				res.Degraded++
			}
			dm := m
			dm.Value = accepted
			inboxes[int(dm.To)] = append(inboxes[int(dm.To)], dm)
		}
		for i := range inboxes {
			types.SortMessages(inboxes[i])
		}
		return inboxes
	}

	var pending []types.Message
	for round := 1; round <= cfg.Rounds; round++ {
		inboxes := deliverRound(pending)
		pending = pending[:0]
		for i := 0; i < n; i++ {
			id := types.NodeID(i)
			out := byID[id].Step(round, inboxes[i])
			for _, m := range out {
				m.From = id
				m.Round = round
				if m.To < 0 || int(m.To) >= n || m.To == m.From {
					continue
				}
				res.LogicalMessages++
				pending = append(pending, m)
			}
		}
	}
	inboxes := deliverRound(pending)
	for i := 0; i < n; i++ {
		id := types.NodeID(i)
		byID[id].Finish(inboxes[i])
		res.Decisions[id] = byID[id].Decide()
	}
	return res, nil
}
