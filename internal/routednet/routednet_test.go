package routednet_test

import (
	"reflect"
	"testing"

	"degradable/internal/adversary"
	"degradable/internal/core"
	"degradable/internal/netsim"
	"degradable/internal/routednet"
	"degradable/internal/spec"
	"degradable/internal/topology"
	"degradable/internal/transport"
	"degradable/internal/types"
)

const (
	alpha types.Value = 100
	beta  types.Value = 200
)

func must(g *topology.Graph, err error) *topology.Graph {
	if err != nil {
		panic(err)
	}
	return g
}

func TestValidation(t *testing.T) {
	g := must(topology.Harary(4, 9))
	p := core.Params{N: 9, M: 1, U: 2}
	nodes, err := p.Nodes(alpha)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := routednet.Run(nodes, routednet.Config{Graph: nil, M: 1, U: 2, Rounds: 2}); err == nil {
		t.Error("nil graph should error")
	}
	if _, err := routednet.Run(nodes[:5], routednet.Config{Graph: g, M: 1, U: 2, Rounds: 2}); err == nil {
		t.Error("node/graph mismatch should error")
	}
	if _, err := routednet.Run(nodes, routednet.Config{Graph: g, M: 1, U: 2, Rounds: 0}); err == nil {
		t.Error("zero rounds should error")
	}
	if _, err := routednet.Run(nodes, routednet.Config{Graph: g, M: 2, U: 1, Rounds: 2}); err == nil {
		t.Error("m > u should error")
	}
	// Strict mode rejects insufficient connectivity.
	cyc := must(topology.Cycle(9))
	if _, err := routednet.Run(nodes, routednet.Config{Graph: cyc, M: 1, U: 2, Rounds: 2, Strict: true}); err == nil {
		t.Error("strict mode should reject a 2-connected cycle for m+u+1=4")
	}
}

func TestHonestRunOverSparseGraph(t *testing.T) {
	g := must(topology.Harary(4, 9))
	p := core.Params{N: 9, M: 1, U: 2}
	nodes, err := p.Nodes(alpha)
	if err != nil {
		t.Fatal(err)
	}
	res, err := routednet.Run(nodes, routednet.Config{Graph: g, M: 1, U: 2, Rounds: p.Depth(), Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	for id, d := range res.Decisions {
		if d != alpha {
			t.Errorf("node %d decided %v", int(id), d)
		}
	}
	if res.Hops <= res.LogicalMessages {
		t.Errorf("hop count %d should exceed logical messages %d on a sparse graph",
			res.Hops, res.LogicalMessages)
	}
	if res.Degraded != 0 {
		t.Errorf("fault-free run degraded %d deliveries", res.Degraded)
	}
}

// The headline: hop-by-hop forwarding and the compressed transport channel
// produce identical decisions for deterministic relay corruption, across
// fault placements and protocol-level strategies.
func TestEquivalenceWithCompressedTransport(t *testing.T) {
	g := must(topology.Harary(4, 9))
	p := core.Params{N: 9, M: 1, U: 2}
	cases := []struct {
		name       string
		faulty     []types.NodeID
		strategyOf func(types.NodeID) adversary.Strategy
		corruptOf  func(types.NodeID) transport.RelayCorruptor
	}{
		{
			name:       "two liars flipping relays",
			faulty:     []types.NodeID{3, 7},
			strategyOf: func(types.NodeID) adversary.Strategy { return adversary.Lie{Value: beta} },
			corruptOf:  func(types.NodeID) transport.RelayCorruptor { return transport.FlipTo(beta) },
		},
		{
			name:   "faulty sender plus dropper",
			faulty: []types.NodeID{0, 5},
			strategyOf: func(id types.NodeID) adversary.Strategy {
				if id == 0 {
					return adversary.TwoFaced{A: types.NewNodeSet(1, 2, 3, 4), ValueA: alpha, ValueB: beta}
				}
				return adversary.Crash{After: 1}
			},
			corruptOf: func(id types.NodeID) transport.RelayCorruptor {
				if id == 0 {
					return transport.FlipTo(beta)
				}
				return transport.DropAll()
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			strategies := make(map[types.NodeID]adversary.Strategy)
			corrupt := make(map[types.NodeID]transport.RelayCorruptor)
			for _, id := range tc.faulty {
				strategies[id] = tc.strategyOf(id)
				corrupt[id] = tc.corruptOf(id)
			}

			// Compressed: netsim + transport channel.
			nodesA, err := p.Nodes(alpha)
			if err != nil {
				t.Fatal(err)
			}
			if err := adversary.Wrap(nodesA, p.N, p.Depth(), 0, alpha, strategies); err != nil {
				t.Fatal(err)
			}
			ch, err := transport.New(g, p.M, p.U, corrupt)
			if err != nil {
				t.Fatal(err)
			}
			resA, err := netsim.Run(nodesA, netsim.Config{Rounds: p.Depth(), Channel: ch})
			if err != nil {
				t.Fatal(err)
			}

			// Uncompressed: hop-by-hop.
			nodesB, err := p.Nodes(alpha)
			if err != nil {
				t.Fatal(err)
			}
			if err := adversary.Wrap(nodesB, p.N, p.Depth(), 0, alpha, strategies); err != nil {
				t.Fatal(err)
			}
			resB, err := routednet.Run(nodesB, routednet.Config{
				Graph: g, M: p.M, U: p.U, Rounds: p.Depth(), Strict: true,
				Faulty: corrupt,
			})
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(resA.Decisions, resB.Decisions) {
				t.Errorf("decisions differ:\ncompressed  %v\nhop-by-hop %v", resA.Decisions, resB.Decisions)
			}
			// And both satisfy the spec.
			verdict := spec.Check(spec.Execution{
				M: p.M, U: p.U, Sender: 0, SenderValue: alpha,
				Faulty:    types.NewNodeSet(tc.faulty...),
				Decisions: resB.Decisions,
			})
			if !verdict.OK {
				t.Errorf("hop-by-hop run violated %s: %s", verdict.Condition, verdict.Reason)
			}
		})
	}
}

func TestLooseModeOnWeakGraph(t *testing.T) {
	// A cycle (κ=2) cannot support m=1,u=2; loose mode runs anyway, and
	// with no faults the protocol still succeeds (both paths agree).
	g := must(topology.Cycle(5))
	p := core.Params{N: 5, M: 1, U: 2}
	nodes, err := p.Nodes(alpha)
	if err != nil {
		t.Fatal(err)
	}
	res, err := routednet.Run(nodes, routednet.Config{Graph: g, M: 1, U: 2, Rounds: p.Depth()})
	if err != nil {
		t.Fatal(err)
	}
	for id, d := range res.Decisions {
		if d != alpha {
			t.Errorf("node %d decided %v", int(id), d)
		}
	}
}
