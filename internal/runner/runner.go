// Package runner composes a protocol, a fault set armed with adversary
// strategies, the synchronous engine, and the executable specification into
// one-call experiment instances. Every experiment and most integration tests
// go through this package.
package runner

import (
	"fmt"

	"degradable/internal/adversary"
	"degradable/internal/netsim"
	"degradable/internal/obs"
	"degradable/internal/spec"
	"degradable/internal/types"
)

// Protocol abstracts an agreement protocol instance (degradable BYZ, OM,
// Crusader). Implemented by core.Params, om.Params, and crusader.Params.
type Protocol interface {
	// System returns the node count, relay depth (= message rounds), and
	// sender identity.
	System() (n, depth int, sender types.NodeID)
	// Thresholds returns the (m, u) pair the protocol promises, used to
	// select the applicable spec condition.
	Thresholds() (m, u int)
	// Nodes returns the fully honest node complement with the sender
	// holding value.
	Nodes(value types.Value) ([]netsim.Node, error)
}

// Instance is one configured run.
type Instance struct {
	// Protocol is the agreement protocol under test.
	Protocol Protocol
	// SenderValue is the (honest) sender's input.
	SenderValue types.Value
	// Strategies arms the fault set: every key is faulty.
	Strategies map[types.NodeID]adversary.Strategy
	// Channel optionally interposes on deliveries (nil = perfect network).
	Channel netsim.Channel
	// RecordViews captures per-node transcripts.
	RecordViews bool
	// Trace, when non-nil, observes every delivered message.
	Trace func(types.Message)
	// Sink, when non-nil, receives structured round events.
	Sink obs.Sink
	// Sequential runs all nodes inline on the calling goroutine (see
	// netsim.Config.Sequential). Identical results, lower overhead; the
	// serving runtime sets it so shard goroutines own instances end-to-end.
	Sequential bool
}

// Faulty returns the fault set implied by the armed strategies.
func (in Instance) Faulty() types.NodeSet {
	var s types.NodeSet
	for id := range in.Strategies {
		s = s.Add(id)
	}
	return s
}

// Run executes the instance and checks the outcome against the spec.
func (in Instance) Run() (*netsim.Result, spec.Verdict, error) {
	if in.Protocol == nil {
		return nil, spec.Verdict{}, fmt.Errorf("runner: nil protocol")
	}
	n, depth, sender := in.Protocol.System()
	nodes, err := in.Protocol.Nodes(in.SenderValue)
	if err != nil {
		return nil, spec.Verdict{}, err
	}
	if err := adversary.Wrap(nodes, n, depth, sender, in.SenderValue, in.Strategies); err != nil {
		return nil, spec.Verdict{}, err
	}
	res, err := netsim.Run(nodes, netsim.Config{
		Rounds:      depth,
		Channel:     in.Channel,
		RecordViews: in.RecordViews,
		Trace:       in.Trace,
		Sink:        in.Sink,
		Sequential:  in.Sequential,
	})
	if err != nil {
		return nil, spec.Verdict{}, err
	}
	m, u := in.Protocol.Thresholds()
	verdict := spec.Check(spec.Execution{
		M: m, U: u,
		Sender:      sender,
		SenderValue: in.SenderValue,
		Faulty:      in.Faulty(),
		Decisions:   res.Decisions,
	})
	return res, verdict, nil
}
