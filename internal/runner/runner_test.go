package runner_test

import (
	"testing"

	"degradable/internal/adversary"
	"degradable/internal/core"
	"degradable/internal/netsim"
	"degradable/internal/runner"
	"degradable/internal/types"
)

func TestRunNilProtocol(t *testing.T) {
	if _, _, err := (runner.Instance{}).Run(); err == nil {
		t.Error("nil protocol should error")
	}
}

func TestFaulty(t *testing.T) {
	in := runner.Instance{Strategies: map[types.NodeID]adversary.Strategy{
		1: adversary.Silent{},
		3: adversary.Silent{},
	}}
	if got := in.Faulty(); got != types.NewNodeSet(1, 3) {
		t.Errorf("Faulty = %v", got)
	}
}

func TestRunEndToEnd(t *testing.T) {
	in := runner.Instance{
		Protocol:    core.Params{N: 5, M: 1, U: 2},
		SenderValue: 7,
		Strategies: map[types.NodeID]adversary.Strategy{
			2: adversary.Lie{Value: 9},
		},
		RecordViews: true,
	}
	res, verdict, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !verdict.OK {
		t.Errorf("verdict = %+v", verdict)
	}
	if res.Views == nil {
		t.Error("views not recorded")
	}
	if res.Decisions[1] != 7 || res.Decisions[3] != 7 || res.Decisions[4] != 7 {
		t.Errorf("decisions = %v", res.Decisions)
	}
}

func TestRunWithChannel(t *testing.T) {
	in := runner.Instance{
		Protocol:    core.Params{N: 5, M: 1, U: 2},
		SenderValue: 7,
		Channel:     netsim.FilterChannel{Keep: func(types.Message) bool { return true }},
	}
	if _, verdict, err := in.Run(); err != nil || !verdict.OK {
		t.Errorf("err=%v verdict=%+v", err, verdict)
	}
}

func TestRunInvalidParams(t *testing.T) {
	in := runner.Instance{Protocol: core.Params{N: 3, M: 1, U: 2}}
	if _, _, err := in.Run(); err == nil {
		t.Error("invalid protocol params should error")
	}
}
