package service

import (
	"degradable/internal/adversary"
	"degradable/internal/core"
	"degradable/internal/obs"
	"degradable/internal/protocol/relay"
	"degradable/internal/round"
	"degradable/internal/spec"
	"degradable/internal/types"
	"degradable/internal/vote"
)

// pool is the reusable per-shape instance: one honest node complement, one
// Byzantine wrapper per node, a pooled round engine, and the arming and
// response scratch, all owned by a single shard. Resetting a pooled node is
// an O(stored) tree sweep; constructing one is a tree allocation — and the
// engine, outbox templates, and path-ranker tables are likewise built once
// per shape and recycled, so a warm pool executes an instance with zero
// allocations.
type pool struct {
	params core.Params
	depth  int
	// honest[i] is node i's honest implementation; byz[i] is the Byzantine
	// wrapper substituted when a request arms node i.
	honest []*relay.Node
	byz    []*adversary.Node
	// nodes is the arming scratch passed to the engine each run.
	nodes []round.Node
	// eng is the pooled round engine, built on the first full run and
	// Restarted for every one after.
	eng *round.Engine
	// recv is the fast path's round-1 receipt vector: one slot per
	// non-sender receiver, absences mapped to V_d per §4.
	recv []types.Value
	// decMap is the reusable spec.Execution decision map for sampled checks.
	decMap map[types.NodeID]types.Value
}

// newPool builds the reusable instance for one shape. The shape was
// validated at admission, so construction cannot fail on a well-formed
// request; any residual error is returned per-request by run.
func newPool(k shape) (*pool, error) {
	params := core.Params{N: k.n, M: k.m, U: k.u, Sender: k.sender}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	p := &pool{
		params: params,
		depth:  params.Depth(),
		honest: make([]*relay.Node, k.n),
		byz:    make([]*adversary.Node, k.n),
		nodes:  make([]round.Node, k.n),
		recv:   make([]types.Value, k.n-1),
	}
	for i := 0; i < k.n; i++ {
		nd, err := params.NewNode(types.NodeID(i), types.Default)
		if err != nil {
			return nil, err
		}
		p.honest[i] = nd
		bn, err := adversary.NewNode(k.n, p.depth, k.sender, types.NodeID(i), types.Default, adversary.Honest{})
		if err != nil {
			return nil, err
		}
		p.byz[i] = bn
	}
	return p, nil
}

// runOne executes one task on the shard's pooled instance for its shape,
// creating the pool on first use.
func (sh *shard) runOne(t *task) (Response, error) {
	k := t.req.shape()
	p, ok := sh.pools[k]
	if !ok {
		var err error
		p, err = newPool(k)
		if err != nil {
			return Response{}, err
		}
		sh.pools[k] = p
	}
	resp, err := p.run(t, sh)
	if err == nil {
		sh.stats.Inc(statCompleted)
		if resp.Degraded {
			sh.stats.Inc(statDegraded)
		}
		sh.stats.Inc(conditionStat(resp.Condition))
	}
	return resp, err
}

// conditionStat maps a selected condition to its counter index.
func conditionStat(condition string) int {
	switch condition {
	case "D.1":
		return statCondD1
	case "D.2":
		return statCondD2
	case "D.3":
		return statCondD3
	case "D.4":
		return statCondD4
	default:
		return statCondNone
	}
}

// run executes one instance on the pooled complement and classifies the
// outcome into the task's decision buffer.
//
// The optimistic fast path decides without materializing the EIG exchange
// when the decision vector is forced:
//
//   - No armed fault: every node is honest, so the sender distributes
//     req.Value, every tree is unanimous and complete, and every node —
//     sender included — decides req.Value.
//   - Only the sender armed: the sender is the only node that ever deviates
//     (a faulty sender has no relay schedule — every valid path starts with
//     it, so its outbox past round 1 is empty), which means the entire run
//     is determined by its round-1 egress. Probe exactly that egress; if the
//     receipt vector (absences mapped to V_d per §4) is unanimous, every
//     receiver's tree ends unanimous-and-complete (or all-default) and
//     resolves to the common value w: receivers decide w, the faulty sender
//     reports V_d.
//
// Any other configuration — a non-sender fault that can still act in rounds
// ≥ 2, or an equivocating sender — falls back to the full VOTE path, which
// also serves as the differential oracle in the equivalence tests. The
// fallback rebuilds the strategy from the request (Kind.Build is
// deterministic per seed), so a probed-then-fallen-back run is
// byte-identical to one that never probed.
func (p *pool) run(t *task, sh *shard) (Response, error) {
	req := &t.req
	n := p.params.N
	if cap(t.dec) < n {
		t.dec = make([]types.Value, n)
	}
	dec := t.dec[:n]

	var faulty types.NodeSet
	for _, f := range req.Faults {
		faulty = faulty.Add(f.Node)
	}

	fast := false
	switch {
	case len(req.Faults) == 0:
		for i := range dec {
			dec[i] = req.Value
		}
		fast = true
	case len(req.Faults) == 1 && req.Faults[0].Node == req.Sender:
		fast = p.probeSender(req, dec)
	}
	if fast {
		sh.stats.Inc(statFastHit)
	} else {
		sh.stats.Inc(statFastFallback)
		if err := p.runFull(req, dec); err != nil {
			return Response{}, err
		}
	}

	deciders, vdDeciders, degraded := receiverTally(dec, req.Sender, faulty)
	sh.stats.Add(statDeciders, uint64(deciders))
	sh.stats.Add(statVdDeciders, uint64(vdDeciders))
	resp := Response{
		Decisions: dec,
		Condition: condition(req.M, req.U, len(req.Faults), faulty.Contains(req.Sender)),
		Degraded:  degraded,
		OK:        true,
	}

	// Sampling mode: every SpecSample-th instance per shard goes through
	// the full executable spec, so serving never drifts from D.1–D.4
	// unnoticed — fast-path decisions included.
	if rate := sh.svc.cfg.SpecSample; rate > 0 {
		sh.sinceCheck++
		if sh.sinceCheck >= rate {
			sh.sinceCheck = 0
			if p.decMap == nil {
				p.decMap = make(map[types.NodeID]types.Value, n)
			} else {
				clear(p.decMap)
			}
			for i := 0; i < n; i++ {
				p.decMap[types.NodeID(i)] = dec[i]
			}
			v := spec.Check(spec.Execution{
				M: req.M, U: req.U,
				Sender:      req.Sender,
				SenderValue: req.Value,
				Faulty:      faulty,
				Decisions:   p.decMap,
			})
			resp.Checked = true
			resp.OK = v.OK
			resp.Graceful = v.Graceful
			resp.Reason = v.Reason
			sh.stats.Inc(statSpecChecked)
			if !v.OK {
				sh.stats.Inc(statSpecViolations)
			}
			if v.Condition != "none" { // the floor is only promised for f ≤ u
				sh.svc.floor.Observe(floorMargin(v, req.M, req.Value, faulty.Contains(req.Sender)))
			}
			if sink := sh.svc.cfg.Sink; sink != nil {
				sink.Emit(obs.VerdictEvent(v.Condition, v.OK, v.Graceful))
			}
		}
	}
	return resp, nil
}

// probeSender runs the armed sender's round-1 egress and, when the receipt
// vector is unanimous, fills dec with the forced decisions and reports a
// fast-path hit. A non-unanimous vector (equivocation or partial omission)
// leaves dec untouched and sends the caller down the full path, which
// re-arms the node with a freshly built strategy.
func (p *pool) probeSender(req *Request, dec []types.Value) bool {
	f := req.Faults[0]
	n := p.params.N
	strat, err := f.Kind.Build(n, f.Value, f.Seed)
	if err != nil {
		return false // the full path surfaces the same error to the caller
	}
	bn := p.byz[int(f.Node)]
	bn.Reset(req.Value, strat)

	// Receipt vector: one slot per non-sender receiver in ID order,
	// initialized to V_d so omissions read as absence per §4.
	recv := p.recv[:n-1]
	for i := range recv {
		recv[i] = types.Default
	}
	for _, m := range bn.Step(1, nil) {
		j := int(m.To)
		if j < 0 || j >= n || m.To == req.Sender || len(m.Path) != 1 {
			continue
		}
		if m.To > req.Sender {
			j--
		}
		recv[j] = m.Value
	}
	w, uni := vote.UnanimousSlots(recv)
	if !uni {
		return false
	}
	for i := range dec {
		dec[i] = w
	}
	dec[int(req.Sender)] = types.Default // a faulty node's decision is V_d
	return true
}

// runFull resets the pooled complement, arms the request's fault set, and
// executes the instance on the pooled engine under the reference schedule,
// reading each node's decision directly into dec.
func (p *pool) runFull(req *Request, dec []types.Value) error {
	n := p.params.N
	for i := 0; i < n; i++ {
		p.honest[i].Reset(req.Value)
		p.nodes[i] = p.honest[i]
	}
	for _, f := range req.Faults {
		strat, err := f.Kind.Build(n, f.Value, f.Seed)
		if err != nil {
			return err
		}
		bn := p.byz[int(f.Node)]
		bn.Reset(req.Value, strat)
		p.nodes[int(f.Node)] = bn
	}

	if p.eng == nil {
		eng, err := round.NewEngine(p.nodes, round.Config{Rounds: p.depth})
		if err != nil {
			return err
		}
		p.eng = eng
	} else if err := p.eng.Restart(p.nodes); err != nil {
		return err
	}
	if err := (round.Reference{}).Drive(p.eng); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		dec[i] = p.nodes[i].Decide()
	}
	return nil
}

// floorMargin computes the §2 Observation slack of a checked verdict: the
// size of the largest fault-free agreement class minus the guaranteed floor
// m+1, counting the fault-free sender for its own value exactly as the
// spec's graceful check does. Negative means the Observation was violated
// (margin ≥ 0 ⟺ Verdict.Graceful).
func floorMargin(v spec.Verdict, m int, senderValue types.Value, senderFaulty bool) int64 {
	largest := 0
	if !senderFaulty {
		largest = 1 // the sender holds its own value even with no receivers
	}
	for d, size := range v.Classes {
		if !senderFaulty && d == senderValue {
			size++
		}
		if size > largest {
			largest = size
		}
	}
	return int64(largest - (m + 1))
}

// condition selects the applicable paper condition from the fault count —
// the same selection spec.Check performs, reproduced here so unsampled
// responses still carry it without paying for the full verdict.
func condition(m, u, f int, senderFaulty bool) string {
	switch {
	case f <= m && !senderFaulty:
		return "D.1"
	case f <= m:
		return "D.2"
	case f <= u && !senderFaulty:
		return "D.3"
	case f <= u:
		return "D.4"
	default:
		return "none"
	}
}

// receiverTally classifies the fault-free receivers' decisions in one
// allocation-free pass: how many decided at all, how many fell back to V_d,
// and whether degradation manifested (some fault-free receiver decided V_d,
// or the fault-free receivers split).
func receiverTally(decisions []types.Value, sender types.NodeID, faulty types.NodeSet) (deciders, vdDeciders int, degraded bool) {
	first := true
	var ref types.Value
	for i, d := range decisions {
		id := types.NodeID(i)
		if id == sender || faulty.Contains(id) {
			continue
		}
		deciders++
		if d == types.Default {
			vdDeciders++
			degraded = true
			continue
		}
		if first {
			ref, first = d, false
		} else if d != ref {
			degraded = true
		}
	}
	return deciders, vdDeciders, degraded
}
