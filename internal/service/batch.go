package service

import (
	"degradable/internal/adversary"
	"degradable/internal/core"
	"degradable/internal/netsim"
	"degradable/internal/obs"
	"degradable/internal/protocol/relay"
	"degradable/internal/spec"
	"degradable/internal/types"
)

// pool is the reusable per-shape instance: one honest node complement, one
// Byzantine wrapper per node, and the arming scratch, all owned by a single
// shard. Resetting a pooled node is a map clear; constructing one is a tree
// allocation — amortizing the latter across a batch is the point of
// grouping identically-shaped requests.
type pool struct {
	params core.Params
	depth  int
	// honest[i] is node i's honest implementation; byz[i] is the Byzantine
	// wrapper substituted when a request arms node i.
	honest []*relay.Node
	byz    []*adversary.Node
	// nodes is the arming scratch passed to the engine each run.
	nodes []netsim.Node
	// decisions is the response scratch; each run copies out of it.
	decisions []types.Value
}

// newPool builds the reusable instance for one shape. The shape was
// validated at admission, so construction cannot fail on a well-formed
// request; any residual error is returned per-request by run.
func newPool(k shape) (*pool, error) {
	params := core.Params{N: k.n, M: k.m, U: k.u, Sender: k.sender}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	p := &pool{
		params:    params,
		depth:     params.Depth(),
		honest:    make([]*relay.Node, k.n),
		byz:       make([]*adversary.Node, k.n),
		nodes:     make([]netsim.Node, k.n),
		decisions: make([]types.Value, k.n),
	}
	for i := 0; i < k.n; i++ {
		nd, err := params.NewNode(types.NodeID(i), types.Default)
		if err != nil {
			return nil, err
		}
		p.honest[i] = nd
		bn, err := adversary.NewNode(k.n, p.depth, k.sender, types.NodeID(i), types.Default, adversary.Honest{})
		if err != nil {
			return nil, err
		}
		p.byz[i] = bn
	}
	return p, nil
}

// runOne executes one request on the shard's pooled instance for its shape,
// creating the pool on first use.
func (sh *shard) runOne(req Request) (Response, error) {
	k := req.shape()
	p, ok := sh.pools[k]
	if !ok {
		var err error
		p, err = newPool(k)
		if err != nil {
			return Response{}, err
		}
		sh.pools[k] = p
	}
	resp, err := p.run(req, sh)
	if err == nil {
		sh.stats.Inc(statCompleted)
		if resp.Degraded {
			sh.stats.Inc(statDegraded)
		}
		sh.stats.Inc(conditionStat(resp.Condition))
	}
	return resp, err
}

// conditionStat maps a selected condition to its counter index.
func conditionStat(condition string) int {
	switch condition {
	case "D.1":
		return statCondD1
	case "D.2":
		return statCondD2
	case "D.3":
		return statCondD3
	case "D.4":
		return statCondD4
	default:
		return statCondNone
	}
}

// run resets the pooled complement, arms the request's fault set, executes
// the instance on the sequential engine, and classifies the outcome.
func (p *pool) run(req Request, sh *shard) (Response, error) {
	n := p.params.N
	var faulty types.NodeSet
	for i := 0; i < n; i++ {
		p.honest[i].Reset(req.Value)
		p.nodes[i] = p.honest[i]
	}
	for _, f := range req.Faults {
		strat, err := f.Kind.Build(n, f.Value, f.Seed)
		if err != nil {
			return Response{}, err
		}
		bn := p.byz[int(f.Node)]
		bn.Reset(req.Value, strat)
		p.nodes[int(f.Node)] = bn
		faulty = faulty.Add(f.Node)
	}

	res, err := netsim.Run(p.nodes, netsim.Config{Rounds: p.depth, Sequential: true})
	if err != nil {
		return Response{}, err
	}
	for i := 0; i < n; i++ {
		p.decisions[i] = res.Decisions[types.NodeID(i)]
	}

	deciders, vdDeciders, degraded := receiverTally(p.decisions, req.Sender, faulty)
	sh.stats.Add(statDeciders, uint64(deciders))
	sh.stats.Add(statVdDeciders, uint64(vdDeciders))
	resp := Response{
		Decisions: append([]types.Value(nil), p.decisions...),
		Condition: condition(req.M, req.U, len(req.Faults), faulty.Contains(req.Sender)),
		Degraded:  degraded,
		OK:        true,
	}

	// Sampling mode: every SpecSample-th instance per shard goes through
	// the full executable spec, so serving never drifts from D.1–D.4
	// unnoticed.
	if rate := sh.svc.cfg.SpecSample; rate > 0 {
		sh.sinceCheck++
		if sh.sinceCheck >= rate {
			sh.sinceCheck = 0
			v := spec.Check(spec.Execution{
				M: req.M, U: req.U,
				Sender:      req.Sender,
				SenderValue: req.Value,
				Faulty:      faulty,
				Decisions:   res.Decisions,
			})
			resp.Checked = true
			resp.OK = v.OK
			resp.Graceful = v.Graceful
			resp.Reason = v.Reason
			sh.stats.Inc(statSpecChecked)
			if !v.OK {
				sh.stats.Inc(statSpecViolations)
			}
			if v.Condition != "none" { // the floor is only promised for f ≤ u
				sh.svc.floor.Observe(floorMargin(v, req.M, req.Value, faulty.Contains(req.Sender)))
			}
			if sink := sh.svc.cfg.Sink; sink != nil {
				sink.Emit(obs.VerdictEvent(v.Condition, v.OK, v.Graceful))
			}
		}
	}
	return resp, nil
}

// floorMargin computes the §2 Observation slack of a checked verdict: the
// size of the largest fault-free agreement class minus the guaranteed floor
// m+1, counting the fault-free sender for its own value exactly as the
// spec's graceful check does. Negative means the Observation was violated
// (margin ≥ 0 ⟺ Verdict.Graceful).
func floorMargin(v spec.Verdict, m int, senderValue types.Value, senderFaulty bool) int64 {
	largest := 0
	if !senderFaulty {
		largest = 1 // the sender holds its own value even with no receivers
	}
	for d, size := range v.Classes {
		if !senderFaulty && d == senderValue {
			size++
		}
		if size > largest {
			largest = size
		}
	}
	return int64(largest - (m + 1))
}

// condition selects the applicable paper condition from the fault count —
// the same selection spec.Check performs, reproduced here so unsampled
// responses still carry it without paying for the full verdict.
func condition(m, u, f int, senderFaulty bool) string {
	switch {
	case f <= m && !senderFaulty:
		return "D.1"
	case f <= m:
		return "D.2"
	case f <= u && !senderFaulty:
		return "D.3"
	case f <= u:
		return "D.4"
	default:
		return "none"
	}
}

// receiverTally classifies the fault-free receivers' decisions in one
// allocation-free pass: how many decided at all, how many fell back to V_d,
// and whether degradation manifested (some fault-free receiver decided V_d,
// or the fault-free receivers split).
func receiverTally(decisions []types.Value, sender types.NodeID, faulty types.NodeSet) (deciders, vdDeciders int, degraded bool) {
	first := true
	var ref types.Value
	for i, d := range decisions {
		id := types.NodeID(i)
		if id == sender || faulty.Contains(id) {
			continue
		}
		deciders++
		if d == types.Default {
			vdDeciders++
			degraded = true
			continue
		}
		if first {
			ref, first = d, false
		} else if d != ref {
			degraded = true
		}
	}
	return deciders, vdDeciders, degraded
}
