package service

import (
	"context"
	"testing"

	"degradable/internal/adversary"
)

// BenchmarkDo measures the full submit→shard→pool→respond path for the
// acceptance shape (N=7, m=1, u=2), fault-free. The per-op time bounds the
// closed-loop throughput one in-flight worker can sustain.
func BenchmarkDo(b *testing.B) {
	svc := New(Config{})
	defer svc.Close()
	ctx := context.Background()
	req := Request{N: 7, M: 1, U: 2, Value: 42}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Do(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDoFaulty is the same path with one two-faced fault armed: the
// strategy rebuild per request is part of the cost.
func BenchmarkDoFaulty(b *testing.B) {
	svc := New(Config{})
	defer svc.Close()
	ctx := context.Background()
	req := Request{N: 7, M: 1, U: 2, Value: 42,
		Faults: []FaultSpec{{Node: 3, Kind: adversary.KindTwoFaced, Value: 99}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Do(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDoSpecEveryInstance prices the sampling spec-check by running it
// on every instance rather than every eighth.
func BenchmarkDoSpecEveryInstance(b *testing.B) {
	svc := New(Config{SpecSample: 1})
	defer svc.Close()
	ctx := context.Background()
	req := Request{N: 7, M: 1, U: 2, Value: 42}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := svc.Do(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if !resp.OK {
			b.Fatal(resp.Reason)
		}
	}
}

// BenchmarkSlotDoFast is the zero-alloc hot loop: a reusable Slot driving
// fault-free requests, decided entirely by the optimistic fast path.
func BenchmarkSlotDoFast(b *testing.B) {
	svc := New(Config{Shards: 1, SpecSample: -1})
	defer svc.Close()
	ctx := context.Background()
	sl := svc.NewSlot()
	req := Request{N: 7, M: 1, U: 2, Value: 42}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sl.Do(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSlotDoSenderProbe prices the sender-only fast path: one armed
// crash fault on the sender, decided by probing its round-1 egress.
func BenchmarkSlotDoSenderProbe(b *testing.B) {
	svc := New(Config{Shards: 1, SpecSample: -1})
	defer svc.Close()
	ctx := context.Background()
	sl := svc.NewSlot()
	req := Request{N: 7, M: 1, U: 2, Value: 42,
		Faults: []FaultSpec{{Node: 0, Kind: adversary.KindCrash}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sl.Do(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSlotDoFallback prices the pooled full path the fast path falls
// back to: one non-sender two-faced fault forces the complete EIG exchange
// on the recycled engine.
func BenchmarkSlotDoFallback(b *testing.B) {
	svc := New(Config{Shards: 1, SpecSample: -1})
	defer svc.Close()
	ctx := context.Background()
	sl := svc.NewSlot()
	req := Request{N: 7, M: 1, U: 2, Value: 42,
		Faults: []FaultSpec{{Node: 3, Kind: adversary.KindTwoFaced, Value: 99}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sl.Do(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDoPipelined keeps a window of requests in flight through Submit,
// letting the shard batch instead of ping-ponging one request at a time.
func BenchmarkDoPipelined(b *testing.B) {
	svc := New(Config{QueueDepth: 4096})
	defer svc.Close()
	req := Request{N: 7, M: 1, U: 2, Value: 42}
	const window = 64
	pending := make([]<-chan Outcome, 0, window)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done, err := svc.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		pending = append(pending, done)
		if len(pending) == window {
			for _, ch := range pending {
				if out := <-ch; out.Err != nil {
					b.Fatal(out.Err)
				}
			}
			pending = pending[:0]
		}
	}
	for _, ch := range pending {
		if out := <-ch; out.Err != nil {
			b.Fatal(out.Err)
		}
	}
}
