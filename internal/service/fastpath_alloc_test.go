//go:build !race

package service

import (
	"context"
	"testing"

	"degradable/internal/adversary"
	"degradable/internal/core"
	"degradable/internal/protocol/relay"
	"degradable/internal/round"
)

// TestFastPathZeroAlloc is the steady-state guard for the optimistic fast
// path: a warm Slot driving fault-free requests through a single shard must
// not allocate anywhere — submit, admission, pool dispatch, response.
// Sampled spec checks are disabled (the verdict's Classes map allocates by
// design); the sampling seam is exercised by the equivalence tests.
func TestFastPathZeroAlloc(t *testing.T) {
	svc := New(Config{Shards: 1, SpecSample: -1})
	defer svc.Close()
	ctx := context.Background()
	sl := svc.NewSlot()
	req := Request{N: 7, M: 1, U: 2, Value: 42}
	for i := 0; i < 100; i++ { // warm the pool and the slot
		if _, err := sl.Do(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := sl.Do(ctx, req); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("warm fast path allocates %.1f times per op, want 0", allocs)
	}
}

// TestBatchArenaZeroAlloc is the guard for the full-path arena: a warmed
// complement re-armed through Engine.Restart and driven to decisions must
// not allocate — trees reset in place, outbox templates and path-ranker
// tables are reused, and the engine recycles its inboxes, pending queue,
// and result view.
func TestBatchArenaZeroAlloc(t *testing.T) {
	params := core.Params{N: 7, M: 1, U: 2}
	nodes, err := params.Nodes(42)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := round.NewEngine(nodes, round.Config{Rounds: params.Depth()})
	if err != nil {
		t.Fatal(err)
	}
	first := true
	run := func() {
		for _, nd := range nodes {
			nd.(*relay.Node).Reset(42)
		}
		if !first {
			if err := eng.Restart(nodes); err != nil {
				t.Fatal(err)
			}
		}
		first = false
		if err := (round.Reference{}).Drive(eng); err != nil {
			t.Fatal(err)
		}
		for _, nd := range nodes {
			if got := nd.Decide(); got != 42 {
				t.Fatalf("decided %s, want 42", got)
			}
		}
	}
	run() // builds templates and ranker tables
	run() // first Restart pass
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Errorf("warm Restart+Drive+Decide allocates %.1f times per run, want 0", allocs)
	}
}

// TestSenderProbeAllocs guards the sender-probe fast path. A silent sender
// (zero-size strategy, so the per-request rebuild boxes for free) must be
// allocation-free end to end; a crash sender pays only the strategy box.
func TestSenderProbeAllocs(t *testing.T) {
	cases := []struct {
		name  string
		kind  adversary.Kind
		bound float64
	}{
		{"silent sender zero alloc", adversary.KindSilent, 0},
		{"crash sender strategy box only", adversary.KindCrash, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			svc := New(Config{Shards: 1, SpecSample: -1})
			defer svc.Close()
			ctx := context.Background()
			sl := svc.NewSlot()
			req := Request{N: 7, M: 1, U: 2, Value: 42,
				Faults: []FaultSpec{{Node: 0, Kind: tc.kind}}}
			for i := 0; i < 100; i++ {
				if _, err := sl.Do(ctx, req); err != nil {
					t.Fatal(err)
				}
			}
			if st := svc.Stats(); st.FastFallbacks != 0 {
				t.Fatalf("sender %s fell back %d times; probe must hit", tc.kind, st.FastFallbacks)
			}
			if allocs := testing.AllocsPerRun(200, func() {
				if _, err := sl.Do(ctx, req); err != nil {
					t.Fatal(err)
				}
			}); allocs > tc.bound {
				t.Errorf("sender-probe path allocates %.1f times per op, want ≤ %g", allocs, tc.bound)
			}
		})
	}
}
