package service

import (
	"context"
	"testing"

	"degradable/internal/adversary"
	"degradable/internal/core"
	"degradable/internal/protocol/relay"
	"degradable/internal/round"
	"degradable/internal/spec"
	"degradable/internal/types"
)

// runOracle executes req on a freshly built complement whose honest nodes
// have the tree-level fast resolve DISABLED — the pristine full VOTE path,
// with no pooling, no outbox templates, and no optimistic shortcut
// anywhere. It is the ground truth the fast-path service must match
// byte for byte.
func runOracle(tb testing.TB, req Request) []types.Value {
	tb.Helper()
	params := core.Params{N: req.N, M: req.M, U: req.U, Sender: req.Sender}
	depth := params.Depth()
	nodes := make([]round.Node, req.N)
	for i := 0; i < req.N; i++ {
		nd, err := relay.New(req.N, depth, req.Sender, types.NodeID(i), req.Value, params.Rule())
		if err != nil {
			tb.Fatalf("oracle node %d: %v", i, err)
		}
		nodes[i] = nd
	}
	for _, f := range req.Faults {
		strat, err := f.Kind.Build(req.N, f.Value, f.Seed)
		if err != nil {
			tb.Fatalf("oracle strategy: %v", err)
		}
		bn, err := adversary.NewNode(req.N, depth, req.Sender, f.Node, req.Value, strat)
		if err != nil {
			tb.Fatalf("oracle byzantine node: %v", err)
		}
		nodes[int(f.Node)] = bn
	}
	if _, err := round.Run(nodes, round.Config{Rounds: depth}, round.Reference{}); err != nil {
		tb.Fatalf("oracle run: %v", err)
	}
	dec := make([]types.Value, req.N)
	for i, nd := range nodes {
		dec[i] = nd.Decide()
	}
	return dec
}

// verdictOf runs the executable spec over a decision vector.
func verdictOf(req Request, dec []types.Value) spec.Verdict {
	var faulty types.NodeSet
	for _, f := range req.Faults {
		faulty = faulty.Add(f.Node)
	}
	m := make(map[types.NodeID]types.Value, len(dec))
	for i, d := range dec {
		m[types.NodeID(i)] = d
	}
	return spec.Check(spec.Execution{
		M: req.M, U: req.U,
		Sender:      req.Sender,
		SenderValue: req.Value,
		Faulty:      faulty,
		Decisions:   m,
	})
}

// checkAgainstOracle runs req through svc and fails unless the decisions
// and the spec verdict are identical to the no-shortcut oracle's.
func checkAgainstOracle(tb testing.TB, svc *Service, req Request) {
	tb.Helper()
	want := runOracle(tb, req)
	resp, err := svc.Do(context.Background(), req)
	if err != nil {
		tb.Fatalf("%+v: %v", req, err)
	}
	if len(resp.Decisions) != req.N {
		tb.Fatalf("%+v: %d decisions, want %d", req, len(resp.Decisions), req.N)
	}
	for i, w := range want {
		if got := resp.Decisions[i]; got != w {
			tb.Errorf("%+v: node %d decided %s, oracle %s", req, i, got, w)
		}
	}
	wv := verdictOf(req, want)
	if resp.Checked && (resp.OK != wv.OK || resp.Graceful != wv.Graceful) {
		tb.Errorf("%+v: verdict OK=%v Graceful=%v, oracle OK=%v Graceful=%v (%s)",
			req, resp.OK, resp.Graceful, wv.OK, wv.Graceful, wv.Reason)
	}
}

// TestFastVsFullExhaustive is the equivalence matrix for the optimistic
// fast path: every feasible shape with N ≤ 6 (all of which exercise depths
// 1 and 2) plus a depth-3 shape, two sender positions each, against the
// fault sets the fast-path predicate dispatches on — fault-free, every
// single-node fault of every kind (sender faults probe; non-sender faults
// must fall back), and every two-node pair where u allows it. Decisions and
// spec verdicts must be identical to the no-shortcut oracle, and the matrix
// must drive both the hit and the fallback counters.
func TestFastVsFullExhaustive(t *testing.T) {
	svc := New(Config{Shards: 2, SpecSample: 1})
	defer svc.Close()

	kinds := []adversary.Kind{
		adversary.KindSilent, adversary.KindCrash, adversary.KindLie,
		adversary.KindTwoFaced, adversary.KindRandom,
	}

	type shape struct{ n, m, u int }
	var shapes []shape
	for n := 2; n <= 6; n++ {
		for m := 0; m <= n; m++ {
			for u := 1; u <= n; u++ {
				if (core.Params{N: n, M: m, U: u}).Validate() == nil {
					shapes = append(shapes, shape{n, m, u})
				}
			}
		}
	}
	shapes = append(shapes, shape{7, 2, 2}) // depth 3 (m+1 rounds)

	for _, sh := range shapes {
		for _, sender := range []types.NodeID{0, types.NodeID(sh.n - 1)} {
			cfgs := [][]FaultSpec{nil}
			for node := 0; node < sh.n; node++ {
				for _, k := range kinds {
					cfgs = append(cfgs, []FaultSpec{
						{Node: types.NodeID(node), Kind: k, Value: 99, Seed: 3}})
				}
			}
			if sh.u >= 2 {
				for a := 0; a < sh.n; a++ {
					for b := a + 1; b < sh.n; b++ {
						cfgs = append(cfgs, []FaultSpec{
							{Node: types.NodeID(a), Kind: adversary.KindTwoFaced, Value: 7},
							{Node: types.NodeID(b), Kind: adversary.KindLie, Value: 9}})
					}
				}
			}
			for ci, faults := range cfgs {
				req := Request{
					N: sh.n, M: sh.m, U: sh.u, Sender: sender,
					Value:  types.Value(42 + ci),
					Faults: faults,
				}
				checkAgainstOracle(t, svc, req)
			}
		}
	}

	st := svc.Stats()
	if st.FastHits == 0 || st.FastFallbacks == 0 {
		t.Errorf("matrix must exercise both paths: hits=%d fallbacks=%d",
			st.FastHits, st.FastFallbacks)
	}
	if st.SpecViolations != 0 {
		t.Fatalf("spec violations: %d", st.SpecViolations)
	}
}

// FuzzFastVsFull is the differential fuzzer over the same seam: arbitrary
// feasible shapes with up to two injected faults (f ≤ u), service decisions
// and spec verdicts against the no-shortcut oracle.
func FuzzFastVsFull(f *testing.F) {
	f.Add(uint8(7), uint8(1), uint8(2), uint8(0), int64(42), uint8(0), uint8(0), uint8(0), int64(0), int64(0), uint8(0), uint8(0), int64(0), int64(0))
	f.Add(uint8(7), uint8(1), uint8(2), uint8(0), int64(42), uint8(1), uint8(0), uint8(2), int64(99), int64(1), uint8(0), uint8(0), int64(0), int64(0))
	f.Add(uint8(5), uint8(1), uint8(2), uint8(2), int64(7), uint8(2), uint8(2), uint8(3), int64(88), int64(5), uint8(4), uint8(1), int64(77), int64(9))
	f.Add(uint8(2), uint8(0), uint8(1), uint8(0), int64(-3), uint8(1), uint8(0), uint8(1), int64(0), int64(2), uint8(0), uint8(0), int64(0), int64(0))
	f.Add(uint8(7), uint8(2), uint8(2), uint8(6), int64(11), uint8(2), uint8(6), uint8(4), int64(1), int64(3), uint8(1), uint8(2), int64(2), int64(4))

	svc := New(Config{SpecSample: 1})
	defer svc.Close()

	f.Fuzz(func(t *testing.T, n, m, u, sender uint8, value int64,
		nf, n1, k1 uint8, v1, s1 int64, n2, k2 uint8, v2, s2 int64) {
		params := core.Params{N: 2 + int(n%6), M: int(m % 3), U: 1 + int(u%4)}
		params.Sender = types.NodeID(int(sender) % params.N)
		if params.Validate() != nil {
			return
		}
		var faults []FaultSpec
		if count := int(nf % 3); count > 0 {
			faults = append(faults, FaultSpec{
				Node: types.NodeID(int(n1) % params.N), Kind: adversary.Kind(1 + k1%5),
				Value: types.Value(v1), Seed: s1,
			})
			node2 := types.NodeID(int(n2) % params.N)
			if count > 1 && params.U > 1 && node2 != faults[0].Node {
				faults = append(faults, FaultSpec{
					Node: node2, Kind: adversary.Kind(1 + k2%5),
					Value: types.Value(v2), Seed: s2,
				})
			}
		}
		req := Request{
			N: params.N, M: params.M, U: params.U, Sender: params.Sender,
			Value:  types.Value(value),
			Faults: faults,
		}
		if req.Validate() != nil {
			return
		}
		checkAgainstOracle(t, svc, req)
	})
}
