package service

import (
	"context"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"degradable/internal/adversary"
	"degradable/internal/obs"
	"degradable/internal/types"
)

// scrape fetches the registry's /metrics endpoint and parses the flat
// "name value" sample lines (comments and histogram series skipped).
func scrape(t *testing.T, reg *obs.Registry) map[string]float64 {
	t.Helper()
	rec := httptest.NewRecorder()
	reg.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	samples := make(map[string]float64)
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("bad exposition line %q", line)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		samples[name] = f
	}
	return samples
}

// TestMetricsEndpointUnderFaults is the observability smoke test the issue
// asks for: run a small service under injected faults (all with f ≤ u),
// scrape /metrics, and check the degradation gauges agree with what the
// spec checker itself concluded — the V_d-decider fraction recomputed from
// the returned decisions, the verdict-class counters against the per-response
// conditions, and the m+1-floor margin non-negative exactly because every
// verdict was graceful.
func TestMetricsEndpointUnderFaults(t *testing.T) {
	svc := New(Config{Shards: 2, SpecSample: 1})
	defer svc.Close()
	reg := obs.NewRegistry()
	svc.Register(reg)

	// All shapes keep f ≤ u, spanning D.1 (clean), D.2 (faulty sender),
	// and D.3/D.4 (m < f ≤ u, the degraded regime).
	reqs := []Request{
		{N: 5, M: 1, U: 2, Value: 10},
		{N: 5, M: 1, U: 2, Value: 11, Faults: []FaultSpec{{Node: 0, Kind: adversary.KindLie, Value: 99}}},
		{N: 5, M: 1, U: 2, Value: 12, Faults: []FaultSpec{
			{Node: 1, Kind: adversary.KindSilent}, {Node: 2, Kind: adversary.KindSilent}}},
		{N: 5, M: 1, U: 2, Value: 13, Faults: []FaultSpec{
			{Node: 0, Kind: adversary.KindSilent}, {Node: 2, Kind: adversary.KindSilent}}},
		{N: 7, M: 1, U: 2, Value: 14, Faults: []FaultSpec{
			{Node: 2, Kind: adversary.KindTwoFaced, Value: 77}, {Node: 5, Kind: adversary.KindSilent}}},
	}
	conditions := make(map[string]uint64)
	var deciders, vdDeciders uint64
	for i, req := range reqs {
		resp, err := svc.Do(context.Background(), req)
		if err != nil {
			t.Fatalf("req %d: %v", i, err)
		}
		if !resp.Checked || !resp.OK {
			t.Fatalf("req %d: Checked=%v OK=%v reason=%q (SpecSample=1, f ≤ u must hold)",
				i, resp.Checked, resp.OK, resp.Reason)
		}
		conditions[resp.Condition]++
		// Recompute the V_d tally over fault-free receivers, the same
		// population the service counts.
		faulty := make(map[types.NodeID]bool, len(req.Faults))
		for _, f := range req.Faults {
			faulty[f.Node] = true
		}
		for id, d := range resp.Decisions {
			if types.NodeID(id) == req.Sender || faulty[types.NodeID(id)] {
				continue
			}
			deciders++
			if d.IsDefault() {
				vdDeciders++
			}
		}
	}

	samples := scrape(t, reg)
	for cond, name := range map[string]string{
		"D.1": "service_condition_d1_total", "D.2": "service_condition_d2_total",
		"D.3": "service_condition_d3_total", "D.4": "service_condition_d4_total",
		"none": "service_condition_none_total",
	} {
		if got := uint64(samples[name]); got != conditions[cond] {
			t.Errorf("%s = %d, want %d (conditions seen: %v)", name, got, conditions[cond], conditions)
		}
	}
	if got := uint64(samples["service_deciders_total"]); got != deciders {
		t.Errorf("service_deciders_total = %d, want %d", got, deciders)
	}
	if got := uint64(samples["service_vd_deciders_total"]); got != vdDeciders {
		t.Errorf("service_vd_deciders_total = %d, want %d", got, vdDeciders)
	}
	wantFrac := float64(vdDeciders) / float64(deciders)
	if got := samples["service_vd_decider_fraction"]; got != wantFrac {
		t.Errorf("service_vd_decider_fraction = %g, want %g", got, wantFrac)
	}
	if vdDeciders == 0 {
		t.Error("workload produced no V_d deciders — the degraded regime was not exercised")
	}
	margin, ok := samples["service_floor_margin_min"]
	if !ok {
		t.Fatal("service_floor_margin_min not exposed after spec-checked instances")
	}
	// Every verdict above was graceful, so the minimum margin over the m+1
	// floor must be non-negative (§2's Observation made a live gauge).
	if margin < 0 {
		t.Errorf("floor margin = %g, want ≥ 0 for graceful verdicts", margin)
	}
	if got := uint64(samples["service_completed_total"]); got != uint64(len(reqs)) {
		t.Errorf("service_completed_total = %d, want %d", got, len(reqs))
	}

	// Fast-path accounting: the fault-free request and the lying-sender
	// request (unanimous probe) hit; the multi-fault ones must fall back.
	if got := uint64(samples["service_fastpath_hit_total"]); got != 2 {
		t.Errorf("service_fastpath_hit_total = %d, want 2", got)
	}
	if got := uint64(samples["service_fastpath_fallback_total"]); got != 3 {
		t.Errorf("service_fastpath_fallback_total = %d, want 3", got)
	}

	// The unified snapshot view must agree with the scrape.
	snap := svc.Telemetry()
	if snap.Counter("vd_deciders_total") != vdDeciders {
		t.Errorf("telemetry vd_deciders_total = %d, want %d", snap.Counter("vd_deciders_total"), vdDeciders)
	}
	if snap.Gauges["vd_decider_fraction"] != wantFrac {
		t.Errorf("telemetry vd_decider_fraction = %g, want %g", snap.Gauges["vd_decider_fraction"], wantFrac)
	}
	if st := svc.Stats(); st.FastHits != 2 || st.FastFallbacks != 3 {
		t.Errorf("Stats fast path = (%d, %d), want (2, 3)", st.FastHits, st.FastFallbacks)
	}
}
