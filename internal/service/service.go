// Package service is the concurrent agreement-serving runtime: it accepts a
// stream of m/u-degradable agreement requests and executes them on a sharded
// worker pool.
//
// Each shard is one goroutine that owns its protocol instances end-to-end —
// requests are admitted through a bounded per-shard queue with explicit
// rejection (never blocking) and executed on the sequential netsim engine,
// so the hot path takes no locks. Identically-shaped instances (same N, m,
// u, sender) are batched: the shard drains its queue up to the batch size
// and runs each shape group on a pooled, reusable node complement, so
// per-instance setup (strategy construction, spec condition selection,
// netsim wiring) is amortized across the batch.
//
// Serving never silently violates the paper's conditions: every shard
// routes a deterministic sample of its results through the executable
// specification (internal/spec) and counts violations, which callers can
// read from Stats. This is the §2 Observation made operational — with
// N > 2m+u the service degrades per request (some receivers fall back to
// V_d) but never fails to produce m+1 fault-free agreement, and the sampler
// continuously re-checks that contract in production.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"degradable/internal/adversary"
	"degradable/internal/core"
	"degradable/internal/obs"
	"degradable/internal/types"
)

// Admission errors, matchable with errors.Is.
var (
	// ErrOverloaded marks a request rejected because the target shard's
	// queue was full. The request was not executed; callers may retry.
	ErrOverloaded = errors.New("service: overloaded (shard queue full)")
	// ErrClosed marks a request submitted after Close began.
	ErrClosed = errors.New("service: closed")
	// ErrInvalid wraps request-validation failures rejected at admission.
	ErrInvalid = errors.New("service: invalid request")
	// ErrQuota marks a request shed by per-tenant admission control: the
	// tenant's token bucket was empty. Produced by the fleet router (the
	// service itself imposes no quotas) and mapped to the wire protocol's
	// RESOURCE_EXHAUSTED-style status; shared here so every layer speaks
	// the same error vocabulary.
	ErrQuota = errors.New("service: per-tenant quota exhausted")
)

// Config parameterizes a Service.
type Config struct {
	// Shards is the number of worker goroutines (default GOMAXPROCS; there
	// is no benefit in exceeding it).
	Shards int
	// QueueDepth is the per-shard admission queue bound (default 1024).
	// A full queue rejects with ErrOverloaded rather than blocking.
	QueueDepth int
	// Batch is the maximum number of requests a shard drains per scheduling
	// round (default 64). Identically-shaped requests within a batch share
	// one pooled instance.
	Batch int
	// SpecSample routes every SpecSample-th completed instance per shard
	// through the full executable spec (default 8; 1 checks every
	// instance, negative disables sampling).
	SpecSample int
	// Sink, when non-nil, receives a structured verdict event for every
	// spec-checked instance (obs.EvVerdict, carrying the D condition and
	// the ok/graceful bits).
	Sink obs.Sink
}

// withDefaults resolves zero fields to their documented defaults.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.SpecSample == 0 {
		c.SpecSample = 8
	}
	return c
}

// FaultSpec arms one node of a requested instance with a built-in Byzantine
// behaviour (the same vocabulary as the degradable facade's Fault).
type FaultSpec struct {
	// Node is the faulty node (the sender may be faulty).
	Node types.NodeID
	// Kind selects the behaviour.
	Kind adversary.Kind
	// Value parameterizes the lying kinds.
	Value types.Value
	// Seed parameterizes KindRandom.
	Seed int64
}

// Request is one m/u-degradable agreement instance to execute.
type Request struct {
	// N, M, U are the instance parameters (N > 2M+U).
	N, M, U int
	// Sender is the distributing node (default 0).
	Sender types.NodeID
	// Value is the sender's input.
	Value types.Value
	// Faults arms the fault set.
	Faults []FaultSpec
	// Tenant bills the request to an admission-control tenant (0 =
	// untenanted). Carried by tagged wire frames; does not affect
	// execution or batching, only accounting.
	Tenant uint32
}

// shape is the batching key: requests with equal shapes run on the same
// pooled instance.
type shape struct {
	n, m, u int
	sender  types.NodeID
}

func (r Request) shape() shape { return shape{n: r.N, m: r.M, u: r.U, sender: r.Sender} }

// Validate checks the request against the Theorem-2 feasibility bounds and
// the fault list for range and duplicates. Strategy construction is
// deferred to the shard (it is part of what batching amortizes).
func (r Request) Validate() error {
	p := core.Params{N: r.N, M: r.M, U: r.U, Sender: r.Sender}
	if err := p.Validate(); err != nil {
		return err
	}
	if r.N > int(types.MaxNodeSetID)+1 {
		return fmt.Errorf("service: N=%d exceeds the node-set limit %d", r.N, types.MaxNodeSetID+1)
	}
	var armed types.NodeSet
	for _, f := range r.Faults {
		if f.Node < 0 || int(f.Node) >= r.N {
			return fmt.Errorf("service: faulty node %d out of range [0,%d)", int(f.Node), r.N)
		}
		if armed.Contains(f.Node) {
			return fmt.Errorf("service: node %d armed twice", int(f.Node))
		}
		armed = armed.Add(f.Node)
	}
	return nil
}

// Response reports one executed instance.
type Response struct {
	// Decisions is every node's decision, indexed by node ID. Faulty nodes
	// report V_d. The slice aliases the completed request's task buffer: it
	// is valid until the Slot that produced it is submitted again (responses
	// from Submit/Do are backed by a per-call task and never invalidated).
	Decisions []types.Value
	// Condition is the paper condition that applied ("D.1".."D.4", or
	// "none" beyond u faults), selected from the request's fault count.
	Condition string
	// Degraded reports whether degradation manifested: the fault-free
	// receivers did not unanimously decide one non-default value.
	Degraded bool
	// Checked reports whether this instance was routed through the full
	// executable spec (the sampling mode).
	Checked bool
	// OK is the spec verdict when Checked (true otherwise — an unchecked
	// instance carries no violation evidence).
	OK bool
	// Graceful is the §2 m+1 agreement floor, populated when Checked.
	Graceful bool
	// Reason explains a spec violation (empty when OK).
	Reason string
}

// Stats is a point-in-time snapshot of service counters.
type Stats struct {
	// Accepted counts requests admitted to a shard queue.
	Accepted uint64
	// Rejected counts requests refused with ErrOverloaded.
	Rejected uint64
	// Completed counts executed instances (answered requests).
	Completed uint64
	// Degraded counts completed instances whose Response.Degraded was set.
	Degraded uint64
	// SpecChecked counts instances routed through the executable spec.
	SpecChecked uint64
	// SpecViolations counts sampled instances whose verdict failed. Always
	// zero unless the protocol or runtime is broken.
	SpecViolations uint64
	// FastHits counts instances decided by the optimistic unanimity fast
	// path without materializing the EIG exchange.
	FastHits uint64
	// FastFallbacks counts instances that ran the full VOTE path.
	FastFallbacks uint64
}

// task is one queued request with its completion slot. dec is the
// task-owned decision buffer the executing shard fills; Response.Decisions
// aliases it, which is what lets a reused Slot serve a request without a
// single allocation.
type task struct {
	req  Request
	done chan Outcome
	dec  []types.Value
}

// Outcome is one answered request: the response, or the error that stopped
// its execution.
type Outcome struct {
	Resp Response
	Err  error
}

// Indices into the service's sharded obs counters. Each shard owns one
// obs.Block (two cache lines of padding, the same false-sharing-free layout
// the old bespoke shardStats struct had), so the hot Add loops never
// contend across shards.
const (
	statAccepted = iota
	statRejected
	statCompleted
	statDegraded
	statSpecChecked
	statSpecViolations
	statDeciders   // fault-free non-sender receivers that decided
	statVdDeciders // of those, how many fell back to V_d
	statCondD1     // completed instances per selected condition
	statCondD2
	statCondD3
	statCondD4
	statCondNone
	statFastHit      // instances decided by the optimistic fast path
	statFastFallback // instances that ran the full VOTE path
	numStats
)

// statNames are the unified-snapshot names of the service counters, in
// index order.
var statNames = []string{
	"accepted_total", "rejected_total", "completed_total", "degraded_total",
	"spec_checked_total", "spec_violations_total",
	"deciders_total", "vd_deciders_total",
	"condition_d1_total", "condition_d2_total", "condition_d3_total",
	"condition_d4_total", "condition_none_total",
	"fastpath_hit_total", "fastpath_fallback_total",
}

// Service is the sharded agreement-serving runtime. Construct with New,
// submit with Do or Submit, and Close to drain.
type Service struct {
	cfg    Config
	shards []*shard
	next   atomic.Uint64
	closed atomic.Bool
	term   chan struct{} // closed when every shard has exited
	wg     sync.WaitGroup

	// stats shard i belongs to shards[i]: each shard writes only its own
	// padded block (admission counts are bumped by the submitting
	// goroutine, still on the target shard's block), and readers sum
	// across shards.
	stats *obs.Sharded
	// floor tracks the minimum observed §2 m+1-floor margin across all
	// spec-checked instances: largest fault-free agreement class minus
	// (m+1). Negative would mean the Observation's guarantee was violated.
	floor *obs.MinGauge
	// sheds counts queue-full admission rejections per tenant, so overload
	// is never a silent drop: the wire layer reports it with an explicit
	// status and this family says who was shedding.
	sheds *obs.Labeled
}

// New starts a service with the given configuration.
func New(cfg Config) *Service {
	s := newUnstarted(cfg)
	s.start()
	return s
}

// newUnstarted builds the service without launching shard goroutines.
// Tests use it to exercise admission and drain deterministically.
func newUnstarted(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{cfg: cfg, term: make(chan struct{})}
	s.shards = make([]*shard, cfg.Shards)
	s.stats = obs.NewSharded(cfg.Shards, statNames...)
	s.floor = obs.NewMinGauge()
	s.sheds = obs.NewLabeled("tenant")
	for i := range s.shards {
		s.shards[i] = &shard{
			svc:   s,
			stats: s.stats.Shard(i),
			in:    make(chan *task, cfg.QueueDepth),
			stop:  make(chan struct{}),
			pools: make(map[shape]*pool),
		}
	}
	return s
}

// start launches the shard goroutines.
func (s *Service) start() {
	for _, sh := range s.shards {
		s.wg.Add(1)
		go sh.run()
	}
}

// Config returns the resolved (defaulted) configuration.
func (s *Service) Config() Config { return s.cfg }

// Stats returns a snapshot of the service counters, summed across shards.
// The snapshot is not atomic across counters (shards keep running while it
// is taken), but each counter is individually consistent. It is a view
// over the obs-backed counters; Telemetry returns the full set.
func (s *Service) Stats() Stats {
	return Stats{
		Accepted:       s.stats.Sum(statAccepted),
		Rejected:       s.stats.Sum(statRejected),
		Completed:      s.stats.Sum(statCompleted),
		Degraded:       s.stats.Sum(statDegraded),
		SpecChecked:    s.stats.Sum(statSpecChecked),
		SpecViolations: s.stats.Sum(statSpecViolations),
		FastHits:       s.stats.Sum(statFastHit),
		FastFallbacks:  s.stats.Sum(statFastFallback),
	}
}

// VdDeciderFraction returns the fraction of fault-free receivers that fell
// back to V_d across all completed instances (0 before any completions).
func (s *Service) VdDeciderFraction() (float64, bool) {
	deciders := s.stats.Sum(statDeciders)
	if deciders == 0 {
		return 0, false
	}
	return float64(s.stats.Sum(statVdDeciders)) / float64(deciders), true
}

// FloorMargin returns the minimum observed m+1-floor margin across
// spec-checked instances, and whether any instance was checked yet.
func (s *Service) FloorMargin() (int64, bool) { return s.floor.Load() }

// TenantKey renders a tenant ID as the label value used by every
// per-tenant counter family.
func TenantKey(tenant uint32) string {
	return strconv.FormatUint(uint64(tenant), 10)
}

// Sheds returns the per-tenant queue-full rejection counters.
func (s *Service) Sheds() *obs.Labeled { return s.sheds }

// Telemetry returns all service counters and degradation gauges as the
// unified snapshot schema.
func (s *Service) Telemetry() obs.Snapshot {
	snap := s.stats.Snapshot()
	snap.SetCounter("admission_shed_total", s.sheds.Total())
	s.sheds.Each(func(value string, count uint64) {
		snap.SetCounter(obs.SeriesKey("admission_shed_total", "tenant", value), count)
	})
	if frac, ok := s.VdDeciderFraction(); ok {
		snap.SetGauge("vd_decider_fraction", frac)
	}
	if margin, ok := s.FloorMargin(); ok {
		snap.SetGauge("floor_margin_min", float64(margin))
	}
	return snap
}

// Register mounts the service's telemetry on an obs registry under the
// service_ prefix: per-counter views plus the degradation gauges the
// /metrics endpoint exposes (verdict-class counts, V_d-decider fraction,
// m+1-floor margin).
func (s *Service) Register(r *obs.Registry) {
	r.Sharded("service", "service counter (summed across shards)", s.stats)
	r.Labeled("service_admission_shed_total",
		"queue-full admission rejections per tenant", s.sheds)
	r.Gauge("service_vd_decider_fraction",
		"fraction of fault-free receivers that decided the default value V_d",
		s.VdDeciderFraction)
	r.Gauge("service_floor_margin_min",
		"minimum observed margin of the largest fault-free agreement class over the m+1 floor",
		func() (float64, bool) {
			margin, ok := s.FloorMargin()
			return float64(margin), ok
		})
}

// Submit validates and enqueues one request, returning a channel that will
// carry exactly one outcome. Admission is non-blocking: a full shard queue
// rejects with ErrOverloaded immediately. Requests admitted before Close
// are always answered (shutdown drains the queues).
func (s *Service) Submit(req Request) (<-chan Outcome, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if err := req.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalid, err)
	}
	t := &task{req: req, done: make(chan Outcome, 1)}
	if err := s.enqueue(t); err != nil {
		return nil, err
	}
	return t.done, nil
}

// enqueue places a validated task on the next shard's queue, non-blocking.
func (s *Service) enqueue(t *task) error {
	sh := s.shards[(s.next.Add(1)-1)%uint64(len(s.shards))]
	select {
	case sh.in <- t:
		sh.stats.Inc(statAccepted)
		return nil
	default:
		sh.stats.Inc(statRejected)
		s.sheds.Get(TenantKey(t.req.Tenant)).Inc()
		return ErrOverloaded
	}
}

// Slot is a reusable submission handle: one pre-allocated task, completion
// channel, decision buffer, and fault scratch, recycled across requests so a
// steady-state caller (the wire server's per-connection loop, a load-test
// worker) submits without allocating. A Slot serves one request at a time —
// Submit again only after the previous outcome was received — and is not
// safe for concurrent use.
type Slot struct {
	svc    *Service
	t      *task
	faults []FaultSpec
}

// NewSlot returns a reusable submission handle bound to the service.
func (s *Service) NewSlot() *Slot {
	return &Slot{svc: s, t: &task{done: make(chan Outcome, 1)}}
}

// Submit validates and enqueues req on the slot's recycled task. The slot
// copies req.Faults into its own scratch, so callers may reuse their fault
// buffer immediately. Exactly one outcome will arrive on Outcome() unless an
// error is returned.
func (sl *Slot) Submit(req Request) error {
	if sl.svc.closed.Load() {
		return ErrClosed
	}
	if err := req.Validate(); err != nil {
		return fmt.Errorf("%w: %w", ErrInvalid, err)
	}
	sl.faults = append(sl.faults[:0], req.Faults...)
	req.Faults = sl.faults
	sl.t.req = req
	return sl.svc.enqueue(sl.t)
}

// Outcome returns the channel carrying the slot's next completion. The
// channel identity changes after an abandoned Do, so re-read it per wait
// rather than caching it across Submits.
func (sl *Slot) Outcome() <-chan Outcome { return sl.t.done }

// Do submits one request on the slot and waits for its response — the
// allocation-free form of Service.Do.
func (sl *Slot) Do(ctx context.Context, req Request) (Response, error) {
	if err := sl.Submit(req); err != nil {
		return Response{}, err
	}
	select {
	case out := <-sl.t.done:
		return out.Resp, out.Err
	case <-ctx.Done():
		// The admitted task still runs; the shard will complete it into the
		// old channel. Abandon the task so the slot's next request cannot
		// race with that late completion.
		sl.abandon()
		return Response{}, ctx.Err()
	case <-sl.svc.term:
		// Close raced the enqueue; one final non-blocking read settles it.
		select {
		case out := <-sl.t.done:
			return out.Resp, out.Err
		default:
			sl.abandon()
			return Response{}, ErrClosed
		}
	}
}

// abandon detaches the slot from an in-flight task it no longer waits for.
// The fault scratch goes with it: the abandoned task's request still aliases
// it, and the shard may yet read it.
func (sl *Slot) abandon() {
	sl.t = &task{done: make(chan Outcome, 1)}
	sl.faults = nil
}

// Do submits one request and waits for its response. ctx cancels the wait
// (not the execution: an admitted request still runs and is accounted, its
// result discarded).
func (s *Service) Do(ctx context.Context, req Request) (Response, error) {
	done, err := s.Submit(req)
	if err != nil {
		return Response{}, err
	}
	select {
	case out := <-done:
		return out.Resp, out.Err
	case <-ctx.Done():
		return Response{}, ctx.Err()
	case <-s.term:
		// Close raced the enqueue and the shard exited without seeing the
		// task; one final non-blocking read settles the race.
		select {
		case out := <-done:
			return out.Resp, out.Err
		default:
			return Response{}, ErrClosed
		}
	}
}

// Close stops admission, drains every shard queue (all admitted requests
// are answered), and waits for the shards to exit. Close is idempotent.
func (s *Service) Close() {
	if s.closed.Swap(true) {
		<-s.term // concurrent Close waits for the first to finish
		return
	}
	for _, sh := range s.shards {
		close(sh.stop)
	}
	s.wg.Wait()
	close(s.term)
}

// shard is one worker goroutine and its private state. Everything below
// runs on the shard goroutine only — no locks anywhere on the path from
// dequeue to completion.
type shard struct {
	svc   *Service
	stats *obs.Block // this shard's padded counter block
	in    chan *task
	stop  chan struct{}
	pools map[shape]*pool
	// sinceCheck counts instances since the last spec sample.
	sinceCheck int
	// batch and groups are reusable scheduling scratch.
	batch  []*task
	groups map[shape][]*task
}

// run is the shard loop: block for one task, drain opportunistically up to
// the batch bound, then execute the batch grouped by shape.
func (sh *shard) run() {
	defer sh.svc.wg.Done()
	for {
		select {
		case t := <-sh.in:
			sh.collect(t)
			sh.execute()
		case <-sh.stop:
			// Drain: admitted requests are always answered.
			for {
				select {
				case t := <-sh.in:
					sh.collect(t)
					sh.execute()
				default:
					return
				}
			}
		}
	}
}

// collect fills the batch scratch with t plus whatever is already queued,
// up to the batch bound.
func (sh *shard) collect(t *task) {
	sh.batch = append(sh.batch[:0], t)
	for len(sh.batch) < sh.svc.cfg.Batch {
		select {
		case t2 := <-sh.in:
			sh.batch = append(sh.batch, t2)
		default:
			return
		}
	}
}

// execute runs the collected batch, grouped by shape so each group shares
// one pooled instance.
func (sh *shard) execute() {
	if len(sh.batch) == 1 {
		// The common uncontended case: skip group bookkeeping entirely.
		t := sh.batch[0]
		resp, err := sh.runOne(t)
		t.done <- Outcome{Resp: resp, Err: err}
		return
	}
	if sh.groups == nil {
		sh.groups = make(map[shape][]*task)
	}
	for _, t := range sh.batch {
		k := t.req.shape()
		sh.groups[k] = append(sh.groups[k], t)
	}
	// Groups are truncated, not deleted, so their backing arrays are reused
	// by the next batch (the map stays bounded by the distinct shapes seen,
	// exactly like the instance pools).
	for k, group := range sh.groups {
		if len(group) == 0 {
			continue
		}
		for _, t := range group {
			resp, err := sh.runOne(t)
			t.done <- Outcome{Resp: resp, Err: err}
		}
		sh.groups[k] = group[:0]
	}
}
