package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"degradable/internal/adversary"
	"degradable/internal/core"
	"degradable/internal/runner"
	"degradable/internal/types"
)

// runReference executes req on the lockstep runner the rest of the repo
// trusts, returning the decisions the service must reproduce.
func runReference(t *testing.T, req Request) map[types.NodeID]types.Value {
	t.Helper()
	strategies := make(map[types.NodeID]adversary.Strategy, len(req.Faults))
	for _, f := range req.Faults {
		s, err := f.Kind.Build(req.N, f.Value, f.Seed)
		if err != nil {
			t.Fatalf("build strategy: %v", err)
		}
		strategies[f.Node] = s
	}
	in := runner.Instance{
		Protocol:    core.Params{N: req.N, M: req.M, U: req.U, Sender: req.Sender},
		SenderValue: req.Value,
		Strategies:  strategies,
	}
	res, verdict, err := in.Run()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if !verdict.OK {
		t.Fatalf("reference run violates spec: %s", verdict.Reason)
	}
	return res.Decisions
}

// TestServiceMatchesRunner cross-checks the pooled, batched, sequential
// service path against the lockstep runner across shapes and fault mixes,
// including repeated reuse of the same pooled instance.
func TestServiceMatchesRunner(t *testing.T) {
	svc := New(Config{Shards: 2, Batch: 8, SpecSample: 1})
	defer svc.Close()

	reqs := []Request{
		{N: 5, M: 1, U: 2, Value: 42},
		{N: 5, M: 1, U: 2, Value: 43, Faults: []FaultSpec{{Node: 3, Kind: adversary.KindLie, Value: 99}}},
		{N: 5, M: 1, U: 2, Value: 44, Faults: []FaultSpec{
			{Node: 2, Kind: adversary.KindTwoFaced, Value: 77},
			{Node: 4, Kind: adversary.KindSilent}}},
		{N: 5, M: 1, U: 2, Value: 45, Faults: []FaultSpec{{Node: 0, Kind: adversary.KindLie, Value: 88}}},
		{N: 7, M: 1, U: 2, Value: 46, Faults: []FaultSpec{{Node: 1, Kind: adversary.KindCrash}}},
		{N: 7, M: 2, U: 2, Value: 47, Faults: []FaultSpec{
			{Node: 3, Kind: adversary.KindRandom, Value: 66, Seed: 7},
			{Node: 5, Kind: adversary.KindLie, Value: 66}}},
		{N: 4, M: 0, U: 2, Value: 48, Faults: []FaultSpec{{Node: 2, Kind: adversary.KindTwoFaced, Value: 55}}},
		{N: 6, M: 1, U: 3, Sender: 2, Value: 49, Faults: []FaultSpec{{Node: 0, Kind: adversary.KindSilent}}},
	}
	// Three passes so every shape's pool is reused with different values
	// and fault sets — a dirty Reset would surface as a mismatch.
	for pass := 0; pass < 3; pass++ {
		for i, req := range reqs {
			req.Value += types.Value(1000 * pass)
			want := runReference(t, req)
			resp, err := svc.Do(context.Background(), req)
			if err != nil {
				t.Fatalf("pass %d req %d: %v", pass, i, err)
			}
			if len(resp.Decisions) != req.N {
				t.Fatalf("pass %d req %d: %d decisions, want %d", pass, i, len(resp.Decisions), req.N)
			}
			for id, w := range want {
				if got := resp.Decisions[int(id)]; got != w {
					t.Errorf("pass %d req %d node %d: decided %s, want %s", pass, i, int(id), got, w)
				}
			}
			if !resp.Checked || !resp.OK {
				t.Errorf("pass %d req %d: Checked=%v OK=%v (SpecSample=1 must check all), reason=%q",
					pass, i, resp.Checked, resp.OK, resp.Reason)
			}
		}
	}
	st := svc.Stats()
	if st.SpecViolations != 0 {
		t.Fatalf("spec violations: %d", st.SpecViolations)
	}
	if st.Completed != uint64(3*len(reqs)) {
		t.Fatalf("completed = %d, want %d", st.Completed, 3*len(reqs))
	}
	if st.SpecChecked != st.Completed {
		t.Fatalf("checked = %d, want %d", st.SpecChecked, st.Completed)
	}
}

// TestConditionSelection verifies the cheap per-response condition matches
// the regime arithmetic of the spec.
func TestConditionSelection(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	cases := []struct {
		faults []FaultSpec
		want   string
	}{
		{nil, "D.1"},
		{[]FaultSpec{{Node: 3, Kind: adversary.KindSilent}}, "D.1"},
		{[]FaultSpec{{Node: 0, Kind: adversary.KindLie, Value: 9}}, "D.2"},
		{[]FaultSpec{{Node: 1, Kind: adversary.KindSilent}, {Node: 2, Kind: adversary.KindSilent}}, "D.3"},
		{[]FaultSpec{{Node: 0, Kind: adversary.KindSilent}, {Node: 2, Kind: adversary.KindSilent}}, "D.4"},
		{[]FaultSpec{{Node: 1, Kind: adversary.KindSilent}, {Node: 2, Kind: adversary.KindSilent},
			{Node: 3, Kind: adversary.KindSilent}}, "none"},
	}
	for i, tc := range cases {
		resp, err := svc.Do(context.Background(), Request{N: 5, M: 1, U: 2, Value: 7, Faults: tc.faults})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if resp.Condition != tc.want {
			t.Errorf("case %d: condition %s, want %s", i, resp.Condition, tc.want)
		}
	}
}

// TestDegradedFlag pins the Degraded semantics: a clean run is not
// degraded; a two-faced sender beyond m (but within u) splits the
// receivers and must be flagged.
func TestDegradedFlag(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	clean, err := svc.Do(context.Background(), Request{N: 5, M: 1, U: 2, Value: 7})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Degraded {
		t.Error("fault-free run flagged degraded")
	}
	// Two silent receivers (f=2 > m=1) force fault-free receivers to vote
	// with insufficient support: some decide V_d.
	deg, err := svc.Do(context.Background(), Request{N: 5, M: 1, U: 2, Value: 7, Faults: []FaultSpec{
		{Node: 1, Kind: adversary.KindSilent}, {Node: 2, Kind: adversary.KindSilent}}})
	if err != nil {
		t.Fatal(err)
	}
	hasDefault := false
	for i, d := range deg.Decisions {
		if i != 0 && i != 1 && i != 2 && d.IsDefault() {
			hasDefault = true
		}
	}
	if hasDefault && !deg.Degraded {
		t.Error("default decisions present but not flagged degraded")
	}
}

// TestValidateRejects covers admission-time rejection.
func TestValidateRejects(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	cases := []Request{
		{N: 4, M: 1, U: 2, Value: 1},                                            // N ≤ 2m+u
		{N: 5, M: 2, U: 1, Value: 1},                                            // m > u
		{N: 5, M: 1, U: 2, Value: 1, Faults: []FaultSpec{{Node: 9}}},            // node out of range
		{N: 5, M: 1, U: 2, Value: 1, Faults: []FaultSpec{{Node: 2}, {Node: 2}}}, // armed twice
		{N: 5, M: 1, U: 2, Sender: 7, Value: 1},                                 // sender out of range
		{N: 80, M: 1, U: 2, Value: 1},                                           // beyond node-set limit
	}
	for i, req := range cases {
		if _, err := svc.Submit(req); err == nil {
			t.Errorf("case %d: invalid request admitted", i)
		} else if !errors.Is(err, ErrInvalid) {
			t.Errorf("case %d: error %v does not wrap ErrInvalid", i, err)
		}
	}
	// An unknown fault kind passes admission (kind construction is the
	// shard's amortized work) and must come back as an execution error.
	if _, err := svc.Do(context.Background(), Request{N: 5, M: 1, U: 2, Value: 1,
		Faults: []FaultSpec{{Node: 1, Kind: adversary.Kind(99)}}}); err == nil {
		t.Error("unknown fault kind succeeded")
	}
}

// TestBackpressure pins the bounded-queue contract deterministically: with
// the shard goroutine not yet running, admission succeeds exactly
// QueueDepth times, then rejects with ErrOverloaded without blocking; a
// drain answers everything that was admitted.
func TestBackpressure(t *testing.T) {
	const depth = 4
	svc := newUnstarted(Config{Shards: 1, QueueDepth: depth, Batch: 2})
	req := Request{N: 5, M: 1, U: 2, Value: 7}

	var admitted []<-chan Outcome
	for i := 0; i < depth; i++ {
		done, err := svc.Submit(req)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		admitted = append(admitted, done)
	}
	rejected := make(chan error, 1)
	go func() {
		_, err := svc.Submit(req)
		rejected <- err
	}()
	select {
	case err := <-rejected:
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("full queue returned %v, want ErrOverloaded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Submit blocked on a full queue")
	}
	st := svc.Stats()
	if st.Accepted != depth || st.Rejected != 1 {
		t.Fatalf("accepted=%d rejected=%d, want %d/1", st.Accepted, st.Rejected, depth)
	}

	// Shutdown drain: run the shard loop with stop already signalled — it
	// must answer every admitted request before exiting.
	svc.closed.Store(true)
	close(svc.shards[0].stop)
	svc.start()
	svc.wg.Wait()
	close(svc.term)
	for i, done := range admitted {
		select {
		case out := <-done:
			if out.Err != nil {
				t.Errorf("drained request %d: %v", i, out.Err)
			}
		default:
			t.Errorf("request %d admitted but never answered", i)
		}
	}
}

// TestCloseDrains exercises the live shutdown path: requests admitted
// before Close are all answered.
func TestCloseDrains(t *testing.T) {
	svc := New(Config{Shards: 2, QueueDepth: 256})
	req := Request{N: 5, M: 1, U: 2, Value: 7}
	var chans []<-chan Outcome
	for i := 0; i < 100; i++ {
		done, err := svc.Submit(req)
		if errors.Is(err, ErrOverloaded) {
			continue
		}
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans = append(chans, done)
	}
	svc.Close()
	for i, done := range chans {
		select {
		case out := <-done:
			if out.Err != nil {
				t.Errorf("request %d: %v", i, out.Err)
			}
		default:
			t.Errorf("request %d admitted before Close but unanswered after", i)
		}
	}
	if _, err := svc.Submit(req); !errors.Is(err, ErrClosed) {
		t.Errorf("post-Close submit: %v, want ErrClosed", err)
	}
	if _, err := svc.Do(context.Background(), req); !errors.Is(err, ErrClosed) {
		t.Errorf("post-Close Do: %v, want ErrClosed", err)
	}
	svc.Close() // idempotent
}

// TestConcurrentSubmitters hammers one service from many goroutines while
// the race detector watches; every accepted request must be answered and
// consistent.
func TestConcurrentSubmitters(t *testing.T) {
	svc := New(Config{Shards: 4, QueueDepth: 64, Batch: 16, SpecSample: 4})
	defer svc.Close()
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < perWorker; i++ {
				req := Request{N: 5, M: 1, U: 2, Value: types.Value(w*1000 + i)}
				if i%3 == 0 {
					req.Faults = []FaultSpec{{Node: types.NodeID(1 + (i % 4)), Kind: adversary.KindLie, Value: 999}}
				}
				resp, err := svc.Do(ctx, req)
				if errors.Is(err, ErrOverloaded) {
					continue
				}
				if err != nil {
					errs <- fmt.Errorf("worker %d req %d: %w", w, i, err)
					return
				}
				if len(resp.Decisions) != 5 {
					errs <- fmt.Errorf("worker %d req %d: %d decisions", w, i, len(resp.Decisions))
					return
				}
				// A fault-free or single-fault 1/2 instance is within m..u:
				// fault-free receivers must agree on the sender's value.
				for id := 2; id < 5; id++ {
					if req.Faults != nil && int(req.Faults[0].Node) == id {
						continue
					}
					if resp.Decisions[id] != req.Value {
						errs <- fmt.Errorf("worker %d req %d node %d: %s, want %s",
							w, i, id, resp.Decisions[id], req.Value)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := svc.Stats(); st.SpecViolations != 0 {
		t.Fatalf("spec violations under concurrency: %d", st.SpecViolations)
	}
}

// TestDoContextCancel confirms a cancelled waiter returns promptly while
// the instance still executes and is accounted.
func TestDoContextCancel(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.Do(ctx, Request{N: 5, M: 1, U: 2, Value: 7}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Do: %v, want context.Canceled", err)
	}
}

// TestPerTenantShedAccounting pins satellite contract: queue-full
// rejections are counted per tenant (never a silent drop) and surface in
// both the telemetry snapshot and the Sheds family.
func TestPerTenantShedAccounting(t *testing.T) {
	svc := newUnstarted(Config{Shards: 1, QueueDepth: 2, Batch: 2})
	req := Request{N: 5, M: 1, U: 2, Value: 7}
	for i := 0; i < 2; i++ {
		if _, err := svc.Submit(req); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	for _, tenant := range []uint32{9, 9, 3} {
		r := req
		r.Tenant = tenant
		if _, err := svc.Submit(r); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("tenant %d: err=%v, want ErrOverloaded", tenant, err)
		}
	}
	if got := svc.Sheds().Get(TenantKey(9)).Load(); got != 2 {
		t.Fatalf("tenant 9 sheds = %d, want 2", got)
	}
	snap := svc.Telemetry()
	if snap.Counters["admission_shed_total"] != 3 {
		t.Fatalf("admission_shed_total = %d, want 3", snap.Counters["admission_shed_total"])
	}
	if snap.Counters[`admission_shed_total{tenant="3"}`] != 1 {
		t.Fatalf("per-tenant series missing: %v", snap.Counters)
	}

	// Drain so the admitted requests are answered and goroutines exit.
	svc.closed.Store(true)
	close(svc.shards[0].stop)
	svc.start()
	svc.wg.Wait()
	close(svc.term)
}
