// Package sig simulates the unforgeable signature scheme assumed by
// authenticated ("signed messages") Byzantine agreement algorithms such as
// Lamport's SM(m).
//
// A central Authority stands in for the cryptography: a signature exists if
// and only if Sign was actually invoked for exactly that (signer, value,
// chain) triple. Protocol code passes its own identity to Sign — a Byzantine
// node can therefore sign any value it likes *as itself* (including
// equivocations) but can never manufacture another node's signature, which
// is precisely the power model of the authenticated algorithms: "a loyal
// general's signature cannot be forged, and anyone can verify its
// authenticity".
//
// Using a bookkeeping authority instead of real asymmetric cryptography
// keeps the module dependency-free and makes the no-forgery property exact
// rather than computational; nothing in the protocols depends on signature
// representation.
package sig

import (
	"fmt"
	"sync"

	"degradable/internal/types"
)

// Authority records issued signatures and answers verification queries. It
// is safe for concurrent use (protocol nodes run in separate goroutines).
type Authority struct {
	mu     sync.Mutex
	issued map[string]bool
}

// NewAuthority returns an empty authority.
func NewAuthority() *Authority {
	return &Authority{issued: make(map[string]bool)}
}

// key identifies one signature act: signer attests to value in the context
// of the message chain that existed before it signed.
func key(signer types.NodeID, v types.Value, chain types.Path) string {
	return fmt.Sprintf("%d|%d|%s", int(signer), int64(v), chain.Key())
}

// Sign records signer's signature over (value, chain) and returns the
// extended chain. The chain passed in is the message's relay chain *before*
// signer was appended; Sign appends it.
func (a *Authority) Sign(signer types.NodeID, v types.Value, chain types.Path) types.Path {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.issued[key(signer, v, chain)] = true
	return chain.Append(signer)
}

// Verify reports whether every link of chain carries a genuine signature
// over v: chain[i] must have signed (v, chain[:i]) for every i.
func (a *Authority) Verify(v types.Value, chain types.Path) bool {
	if len(chain) == 0 {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := range chain {
		if !a.issued[key(chain[i], v, chain[:i])] {
			return false
		}
	}
	return true
}

// Count returns the number of issued signatures (diagnostics).
func (a *Authority) Count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.issued)
}
