package sig

import (
	"sync"
	"testing"

	"degradable/internal/types"
)

func TestSignAndVerify(t *testing.T) {
	a := NewAuthority()
	chain := a.Sign(0, 42, nil)
	if len(chain) != 1 || chain[0] != 0 {
		t.Fatalf("chain = %v", chain)
	}
	if !a.Verify(42, chain) {
		t.Error("genuine signature rejected")
	}
	if a.Verify(43, chain) {
		t.Error("wrong value verified")
	}
}

func TestChainExtension(t *testing.T) {
	a := NewAuthority()
	c1 := a.Sign(0, 7, nil)
	c2 := a.Sign(1, 7, c1)
	if c2.Key() != (types.Path{0, 1}).Key() {
		t.Fatalf("chain = %v", c2)
	}
	if !a.Verify(7, c2) {
		t.Error("two-link chain rejected")
	}
	// A chain whose middle link never signed is rejected.
	forged := types.Path{0, 2}
	if a.Verify(7, forged) {
		t.Error("forged chain verified")
	}
}

func TestTamperedValueFailsVerification(t *testing.T) {
	a := NewAuthority()
	c1 := a.Sign(0, 7, nil)
	// Node 1 signs a DIFFERENT value over the same prefix — its own link
	// exists but node 0's does not verify for the new value.
	c2 := a.Sign(1, 8, c1)
	if a.Verify(8, c2) {
		t.Error("tampered chain verified: prefix signature should not cover new value")
	}
}

func TestEmptyChain(t *testing.T) {
	a := NewAuthority()
	if a.Verify(1, nil) {
		t.Error("empty chain verified")
	}
}

func TestCount(t *testing.T) {
	a := NewAuthority()
	a.Sign(0, 1, nil)
	a.Sign(1, 1, types.Path{0})
	a.Sign(0, 1, nil) // duplicate act, same key
	if got := a.Count(); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
}

func TestConcurrentUse(t *testing.T) {
	a := NewAuthority()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c := a.Sign(types.NodeID(i), types.Value(j), nil)
				if !a.Verify(types.Value(j), c) {
					t.Errorf("lost signature %d/%d", i, j)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
