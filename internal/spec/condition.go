package spec

import (
	"fmt"

	"degradable/internal/types"
)

// CheckCondition evaluates one named paper condition ("D.1".."D.4") against
// the execution, regardless of which condition the fault count would select.
// Check is the normal entry point; this one exists for harnesses that pin an
// expectation on purpose — e.g. the chaos engine's intentionally mis-bounded
// scenarios, which assert D.1 for fault counts that only warrant D.3/D.4 and
// expect the check to fail.
func CheckCondition(condition string, e Execution) (ok bool, reason string) {
	classes := make(map[types.Value]int)
	decisions := make(map[types.NodeID]types.Value)
	for id, d := range e.Decisions {
		if id == e.Sender || e.Faulty.Contains(id) {
			continue
		}
		decisions[id] = d
		classes[d]++
	}
	switch condition {
	case "D.1":
		return checkD1(decisions, e.SenderValue)
	case "D.2":
		return checkD2(classes)
	case "D.3":
		return checkD3(classes, e.SenderValue)
	case "D.4":
		return checkD4(classes)
	default:
		return false, fmt.Sprintf("unknown condition %q", condition)
	}
}
