package spec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"degradable/internal/types"
)

// Metamorphic property: relabeling node IDs by any permutation that fixes
// the sender preserves the verdict (OK, Condition, Graceful) — the spec
// depends only on the multiset of fault-free decisions and roles.
func TestCheckPermutationInvariantQuick(t *testing.T) {
	f := func(seed int64, faultyRaw uint8, decRaw []uint8) bool {
		const n = 6
		rng := rand.New(rand.NewSource(seed))
		e := Execution{M: 1, U: 3, Sender: 0, SenderValue: 5}
		for i := 1; i < n; i++ {
			if faultyRaw&(1<<uint(i)) != 0 {
				e.Faulty = e.Faulty.Add(types.NodeID(i))
			}
		}
		if rng.Intn(4) == 0 {
			e.Faulty = e.Faulty.Add(0) // sometimes the sender is faulty
		}
		e.Decisions = make(map[types.NodeID]types.Value)
		for i := 1; i < n; i++ {
			var v types.Value
			if len(decRaw) > 0 {
				b := decRaw[i%len(decRaw)]
				if b%4 == 3 {
					v = types.Default
				} else {
					v = types.Value(b % 3)
				}
			}
			e.Decisions[types.NodeID(i)] = v
		}
		base := Check(e)

		// Permute receiver IDs 1..n-1.
		perm := rng.Perm(n - 1)
		mapped := Execution{
			M: e.M, U: e.U, Sender: 0, SenderValue: e.SenderValue,
			Decisions: make(map[types.NodeID]types.Value),
		}
		relabel := func(id types.NodeID) types.NodeID {
			if id == 0 {
				return 0
			}
			return types.NodeID(perm[int(id)-1] + 1)
		}
		for _, id := range e.Faulty.IDs() {
			mapped.Faulty = mapped.Faulty.Add(relabel(id))
		}
		for id, d := range e.Decisions {
			mapped.Decisions[relabel(id)] = d
		}
		got := Check(mapped)
		return got.OK == base.OK && got.Condition == base.Condition &&
			got.Graceful == base.Graceful && got.Regime == base.Regime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Metamorphic property: renaming the application values by any injective
// mapping that fixes V_d preserves OK/Graceful.
func TestCheckValueRenamingQuick(t *testing.T) {
	f := func(faultyRaw uint8, decRaw []uint8, offset int16) bool {
		if offset == 0 {
			offset = 1
		}
		const n = 5
		e := Execution{M: 1, U: 2, Sender: 0, SenderValue: 100}
		for i := 1; i < n; i++ {
			if faultyRaw&(1<<uint(i)) != 0 && e.Faulty.Len() < 2 {
				e.Faulty = e.Faulty.Add(types.NodeID(i))
			}
		}
		e.Decisions = make(map[types.NodeID]types.Value)
		for i := 1; i < n; i++ {
			var v types.Value = types.Default
			if len(decRaw) > 0 && decRaw[i%len(decRaw)]%3 != 0 {
				v = types.Value(100 + int64(decRaw[i%len(decRaw)]%3))
			}
			e.Decisions[types.NodeID(i)] = v
		}
		base := Check(e)

		rename := func(v types.Value) types.Value {
			if v == types.Default {
				return v
			}
			return v*1000 + types.Value(offset)
		}
		mapped := Execution{
			M: e.M, U: e.U, Sender: 0,
			SenderValue: rename(e.SenderValue),
			Faulty:      e.Faulty,
			Decisions:   make(map[types.NodeID]types.Value),
		}
		for id, d := range e.Decisions {
			mapped.Decisions[id] = rename(d)
		}
		got := Check(mapped)
		return got.OK == base.OK && got.Graceful == base.Graceful
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
