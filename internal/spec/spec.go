// Package spec is the executable specification of m/u-degradable agreement.
//
// Given one execution's outcome — who was faulty, what the sender's value
// was, and what every fault-free receiver decided — Check determines which
// of the paper's conditions applies (D.1/D.2 for f ≤ m, D.3/D.4 for
// m < f ≤ u) and whether the decisions satisfy it. It also verifies the
// graceful-degradation observation of §2: with N > 2m+u and f ≤ u, at least
// m+1 fault-free nodes (sender included) agree on an identical value.
//
// The channel-system conditions B.1 and C.1–C.3 (§3) are checked where they
// live, in internal/channels; interactive-consistency vectors are checked
// by internal/protocol/ic, which applies this package entry-wise.
package spec

import (
	"fmt"
	"sort"
	"strings"

	"degradable/internal/types"
)

// Regime identifies which fault regime an execution fell in.
type Regime int

// Regimes, by increasing fault count.
const (
	// RegimeClassic is f ≤ m: full Byzantine agreement required (D.1, D.2).
	RegimeClassic Regime = iota + 1
	// RegimeDegraded is m < f ≤ u: degraded agreement required (D.3, D.4).
	RegimeDegraded
	// RegimeBeyond is f > u: the protocol promises nothing.
	RegimeBeyond
)

// String implements fmt.Stringer.
func (r Regime) String() string {
	switch r {
	case RegimeClassic:
		return "classic"
	case RegimeDegraded:
		return "degraded"
	case RegimeBeyond:
		return "beyond-u"
	default:
		return fmt.Sprintf("Regime(%d)", int(r))
	}
}

// Execution is the observable outcome of one agreement run.
type Execution struct {
	// M and U are the instance parameters.
	M, U int
	// Sender is the distributing node.
	Sender types.NodeID
	// SenderValue is the value a fault-free sender distributed. Ignored
	// when the sender is faulty.
	SenderValue types.Value
	// Faulty is the fault set (sender included when faulty).
	Faulty types.NodeSet
	// Decisions maps each node to its decided value. Entries for faulty
	// nodes are ignored; every fault-free receiver must be present.
	Decisions map[types.NodeID]types.Value
}

// F returns the number of faulty nodes.
func (e Execution) F() int { return e.Faulty.Len() }

// SenderFaulty reports whether the sender is in the fault set.
func (e Execution) SenderFaulty() bool { return e.Faulty.Contains(e.Sender) }

// Verdict is the result of checking an execution against the spec.
type Verdict struct {
	// Regime and Condition identify what was required ("D.1".."D.4", or
	// "none" beyond u).
	Regime    Regime
	Condition string
	// OK reports whether the requirement held. Beyond u it is trivially
	// true.
	OK bool
	// Reason explains a violation (empty when OK).
	Reason string
	// Classes is the decision histogram over fault-free receivers.
	Classes map[types.Value]int
	// Graceful reports the §2 observation: some value is shared by at
	// least m+1 fault-free nodes (sender counts for its own value). Only
	// meaningful when f ≤ u.
	Graceful bool
}

// Check evaluates the execution against m/u-degradable agreement.
func Check(e Execution) Verdict {
	v := Verdict{Classes: make(map[types.Value]int)}
	decisions := make(map[types.NodeID]types.Value)
	for id, d := range e.Decisions {
		if id == e.Sender || e.Faulty.Contains(id) {
			continue
		}
		decisions[id] = d
		v.Classes[d]++
	}

	f := e.F()
	switch {
	case f <= e.M:
		v.Regime = RegimeClassic
	case f <= e.U:
		v.Regime = RegimeDegraded
	default:
		v.Regime = RegimeBeyond
		v.Condition = "none"
		v.OK = true
		return v
	}

	senderFaulty := e.SenderFaulty()
	switch {
	case v.Regime == RegimeClassic && !senderFaulty:
		v.Condition = "D.1"
		v.OK, v.Reason = checkD1(decisions, e.SenderValue)
	case v.Regime == RegimeClassic && senderFaulty:
		v.Condition = "D.2"
		v.OK, v.Reason = checkD2(v.Classes)
	case v.Regime == RegimeDegraded && !senderFaulty:
		v.Condition = "D.3"
		v.OK, v.Reason = checkD3(v.Classes, e.SenderValue)
	default:
		v.Condition = "D.4"
		v.OK, v.Reason = checkD4(v.Classes)
	}

	v.Graceful = graceful(e, v.Classes)
	return v
}

// checkD1: every fault-free receiver decided the sender's value. The lowest
// offending node is reported so the reason is deterministic.
func checkD1(decisions map[types.NodeID]types.Value, want types.Value) (bool, string) {
	ids := make([]types.NodeID, 0, len(decisions))
	for id := range decisions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if d := decisions[id]; d != want {
			return false, fmt.Sprintf("D.1: node %d decided %s, want sender's %s", int(id), d, want)
		}
	}
	return true, ""
}

// checkD2: all fault-free receivers decided one identical value.
func checkD2(classes map[types.Value]int) (bool, string) {
	if len(classes) > 1 {
		return false, fmt.Sprintf("D.2: %d distinct decisions %s", len(classes), renderClasses(classes))
	}
	return true, ""
}

// checkD3: at most two classes — the sender's value and V_d. The lowest
// offending value is reported so the reason is deterministic.
func checkD3(classes map[types.Value]int, senderValue types.Value) (bool, string) {
	keys := make([]types.Value, 0, len(classes))
	for d := range classes {
		keys = append(keys, d)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, d := range keys {
		if d != senderValue && d != types.Default {
			return false, fmt.Sprintf("D.3: decision %s is neither sender's %s nor V_d", d, senderValue)
		}
	}
	return true, ""
}

// checkD4: at most two classes, one of which is V_d — equivalently, at most
// one distinct non-default decision value.
func checkD4(classes map[types.Value]int) (bool, string) {
	var nonDefault int
	for d := range classes {
		if d != types.Default {
			nonDefault++
		}
	}
	if nonDefault > 1 {
		return false, fmt.Sprintf("D.4: %d distinct non-default decisions %s", nonDefault, renderClasses(classes))
	}
	return true, ""
}

// graceful checks the §2 observation over fault-free *nodes* (receivers plus
// the sender, which trivially holds its own value when fault-free).
func graceful(e Execution, classes map[types.Value]int) bool {
	need := e.M + 1
	for d, c := range classes {
		if !e.SenderFaulty() && d == e.SenderValue {
			c++
		}
		if c >= need {
			return true
		}
	}
	// Degenerate but possible: the sender alone suffices when m = 0 and no
	// receiver is fault-free.
	return !e.SenderFaulty() && need <= 1 && len(classes) == 0
}

func renderClasses(classes map[types.Value]int) string {
	keys := make([]types.Value, 0, len(classes))
	for d := range classes {
		keys = append(keys, d)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	parts := make([]string, len(keys))
	for i, d := range keys {
		parts[i] = fmt.Sprintf("%s×%d", d, classes[d])
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
