package spec

import (
	"strings"
	"testing"

	"degradable/internal/types"
)

// exec builds a 1/2-degradable execution over N=5 nodes (sender 0) tersely.
func exec(m, u int, faulty types.NodeSet, senderVal types.Value, decisions map[types.NodeID]types.Value) Execution {
	return Execution{
		M: m, U: u,
		Sender:      0,
		SenderValue: senderVal,
		Faulty:      faulty,
		Decisions:   decisions,
	}
}

func TestRegimeString(t *testing.T) {
	if RegimeClassic.String() != "classic" || RegimeDegraded.String() != "degraded" ||
		RegimeBeyond.String() != "beyond-u" {
		t.Error("unexpected Regime strings")
	}
	if !strings.Contains(Regime(9).String(), "9") {
		t.Error("unknown regime should render its number")
	}
}

func TestD1Satisfied(t *testing.T) {
	v := Check(exec(1, 2, types.NewNodeSet(3), 7, map[types.NodeID]types.Value{
		1: 7, 2: 7, 4: 7,
	}))
	if v.Condition != "D.1" || !v.OK || v.Regime != RegimeClassic {
		t.Errorf("verdict = %+v", v)
	}
	if !v.Graceful {
		t.Error("graceful degradation should hold")
	}
}

func TestD1Violated(t *testing.T) {
	v := Check(exec(1, 2, types.NewNodeSet(3), 7, map[types.NodeID]types.Value{
		1: 7, 2: 9, 4: 7,
	}))
	if v.Condition != "D.1" || v.OK {
		t.Errorf("verdict = %+v", v)
	}
	if !strings.Contains(v.Reason, "D.1") {
		t.Errorf("reason = %q", v.Reason)
	}
}

func TestD1FaultyDecisionsIgnored(t *testing.T) {
	// The faulty node's recorded decision must not trip the check.
	v := Check(exec(1, 2, types.NewNodeSet(3), 7, map[types.NodeID]types.Value{
		1: 7, 2: 7, 3: 999, 4: 7,
	}))
	if !v.OK {
		t.Errorf("faulty node's decision counted: %+v", v)
	}
}

func TestD2SatisfiedAndViolated(t *testing.T) {
	// Sender faulty, f=1 ≤ m: all fault-free receivers identical.
	ok := Check(exec(1, 2, types.NewNodeSet(0), 7, map[types.NodeID]types.Value{
		1: 3, 2: 3, 3: 3, 4: 3,
	}))
	if ok.Condition != "D.2" || !ok.OK {
		t.Errorf("verdict = %+v", ok)
	}
	// Agreement on V_d is also fine for D.2.
	okDefault := Check(exec(1, 2, types.NewNodeSet(0), 7, map[types.NodeID]types.Value{
		1: types.Default, 2: types.Default, 3: types.Default, 4: types.Default,
	}))
	if !okDefault.OK {
		t.Errorf("verdict = %+v", okDefault)
	}
	bad := Check(exec(1, 2, types.NewNodeSet(0), 7, map[types.NodeID]types.Value{
		1: 3, 2: 4, 3: 3, 4: 3,
	}))
	if bad.Condition != "D.2" || bad.OK {
		t.Errorf("verdict = %+v", bad)
	}
}

func TestD3(t *testing.T) {
	// f=2 > m=1, sender fault-free: receivers may split {sender value, V_d}.
	ok := Check(exec(1, 2, types.NewNodeSet(3, 4), 7, map[types.NodeID]types.Value{
		1: 7, 2: types.Default,
	}))
	if ok.Condition != "D.3" || !ok.OK || ok.Regime != RegimeDegraded {
		t.Errorf("verdict = %+v", ok)
	}
	// A wrong non-default value violates D.3.
	bad := Check(exec(1, 2, types.NewNodeSet(3, 4), 7, map[types.NodeID]types.Value{
		1: 7, 2: 9,
	}))
	if bad.OK {
		t.Errorf("verdict = %+v", bad)
	}
	// All-default is allowed (one class).
	allDefault := Check(exec(1, 2, types.NewNodeSet(3, 4), 7, map[types.NodeID]types.Value{
		1: types.Default, 2: types.Default,
	}))
	if !allDefault.OK {
		t.Errorf("verdict = %+v", allDefault)
	}
}

func TestD4(t *testing.T) {
	// Sender faulty, f=2 > m=1: one non-default class plus V_d allowed.
	ok := Check(exec(1, 2, types.NewNodeSet(0, 3), 7, map[types.NodeID]types.Value{
		1: 5, 2: types.Default, 4: 5,
	}))
	if ok.Condition != "D.4" || !ok.OK {
		t.Errorf("verdict = %+v", ok)
	}
	// Two distinct non-default values violate D.4.
	bad := Check(exec(1, 2, types.NewNodeSet(0, 3), 7, map[types.NodeID]types.Value{
		1: 5, 2: 6, 4: 5,
	}))
	if bad.OK {
		t.Errorf("verdict = %+v", bad)
	}
	if !strings.Contains(bad.Reason, "D.4") {
		t.Errorf("reason = %q", bad.Reason)
	}
}

func TestBeyondU(t *testing.T) {
	v := Check(exec(1, 2, types.NewNodeSet(1, 2, 3), 7, map[types.NodeID]types.Value{
		4: 42,
	}))
	if v.Regime != RegimeBeyond || !v.OK || v.Condition != "none" {
		t.Errorf("verdict = %+v", v)
	}
}

func TestGracefulDegradation(t *testing.T) {
	// m=1: need 2 fault-free nodes on one value. Sender (value 7) + node 1.
	v := Check(exec(1, 2, types.NewNodeSet(3, 4), 7, map[types.NodeID]types.Value{
		1: 7, 2: types.Default,
	}))
	if !v.Graceful {
		t.Error("sender + one receiver on 7 should be graceful for m=1")
	}
	// Split 1/1 with no second vote for either value: not graceful.
	// (m=1 needs m+1 = 2; sender's value 9 doesn't match any receiver.)
	v2 := Check(Execution{
		M: 1, U: 2, Sender: 0, SenderValue: 9,
		Faulty: types.NewNodeSet(3, 4),
		Decisions: map[types.NodeID]types.Value{
			1: 5, 2: types.Default,
		},
	})
	if v2.Graceful {
		t.Error("no value held by 2 fault-free nodes; graceful should be false")
	}
	// Two receivers on V_d are enough even if neither matches the sender.
	v3 := Check(Execution{
		M: 1, U: 2, Sender: 0, SenderValue: 9,
		Faulty: types.NewNodeSet(3, 4),
		Decisions: map[types.NodeID]types.Value{
			1: types.Default, 2: types.Default,
		},
	})
	if !v3.Graceful {
		t.Error("two fault-free receivers on V_d should be graceful")
	}
}

func TestSenderDecisionIgnored(t *testing.T) {
	// A recorded decision for the sender must not be counted as a receiver.
	v := Check(exec(1, 2, types.NewNodeSet(4), 7, map[types.NodeID]types.Value{
		0: 7, 1: 7, 2: 7, 3: 7,
	}))
	if got := v.Classes[7]; got != 3 {
		t.Errorf("Classes[7] = %d, want 3 (sender excluded)", got)
	}
}

func TestExecutionHelpers(t *testing.T) {
	e := exec(1, 2, types.NewNodeSet(0, 2), 7, nil)
	if e.F() != 2 {
		t.Errorf("F = %d", e.F())
	}
	if !e.SenderFaulty() {
		t.Error("sender should be faulty")
	}
}
