// Package stats provides the small numeric and rendering utilities shared
// by the experiment harness: summaries, counters, and fixed-width ASCII
// tables in the style of the paper's own table.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P50, P95, P99 float64
}

// Summarize computes a Summary of xs. An empty sample yields the zero value.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(sq / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = percentile(sorted, 0.50)
	s.P95 = percentile(sorted, 0.95)
	s.P99 = percentile(sorted, 0.99)
	return s
}

// percentile interpolates the p-quantile of a sorted sample.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Counter tallies named outcomes.
type Counter struct {
	counts map[string]int
	total  int
}

// NewCounter returns an empty counter.
func NewCounter() *Counter {
	return &Counter{counts: make(map[string]int)}
}

// Add increments name by one.
func (c *Counter) Add(name string) {
	c.counts[name]++
	c.total++
}

// Get returns name's count.
func (c *Counter) Get(name string) int { return c.counts[name] }

// Total returns the sum of all counts.
func (c *Counter) Total() int { return c.total }

// Fraction returns name's share of the total (0 when empty).
func (c *Counter) Fraction(name string) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.counts[name]) / float64(c.total)
}

// Names returns the tallied names in sorted order.
func (c *Counter) Names() []string {
	names := make([]string, 0, len(c.counts))
	for n := range c.counts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Table renders fixed-width ASCII tables.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.headers {
		widths[i] = len([]rune(h))
	}
	for _, r := range t.rows {
		for i, c := range r {
			if w := len([]rune(c)); w > widths[i] {
				widths[i] = w
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[i]))
		}
		b.WriteByte('\n')
	}
	if len(t.headers) > 0 {
		writeRow(t.headers)
		sep := make([]string, cols)
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		writeRow(sep)
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

func pad(s string, w int) string {
	if n := w - len([]rune(s)); n > 0 {
		return s + strings.Repeat(" ", n)
	}
	return s
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}
