package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{5})
	if s.N != 1 || s.Mean != 5 || s.Min != 5 || s.Max != 5 || s.Std != 0 {
		t.Errorf("single summary = %+v", s)
	}
	if s.P50 != 5 || s.P95 != 5 || s.P99 != 5 {
		t.Errorf("percentiles = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Mean != 3 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("Std = %v", s.Std)
	}
	if s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("summary = %+v", s)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	s := Summarize([]float64{0, 10})
	if s.P50 != 5 {
		t.Errorf("P50 of {0,10} = %v, want 5", s.P50)
	}
}

// TestSummarizeTwo pins the N=2 edge: every percentile interpolates on the
// single [lo, hi] segment, and P95/P99 land near (not at) the max.
func TestSummarizeTwo(t *testing.T) {
	s := Summarize([]float64{0, 100})
	if s.N != 2 || s.Min != 0 || s.Max != 100 || s.Mean != 50 {
		t.Errorf("summary = %+v", s)
	}
	if s.P50 != 50 {
		t.Errorf("P50 = %v, want 50", s.P50)
	}
	if math.Abs(s.P95-95) > 1e-12 {
		t.Errorf("P95 = %v, want 95", s.P95)
	}
	if math.Abs(s.P99-99) > 1e-12 {
		t.Errorf("P99 = %v, want 99", s.P99)
	}
	if math.Abs(s.Std-math.Sqrt(5000)) > 1e-9 {
		t.Errorf("Std = %v", s.Std)
	}
}

// TestSummarizeAllEqual checks a constant sample: zero spread, every
// percentile equal to the constant, no NaNs from the variance path.
func TestSummarizeAllEqual(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 101} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 7.5
		}
		s := Summarize(xs)
		if s.Mean != 7.5 || s.Min != 7.5 || s.Max != 7.5 {
			t.Errorf("n=%d: summary = %+v", n, s)
		}
		if s.Std != 0 {
			t.Errorf("n=%d: Std = %v, want 0", n, s.Std)
		}
		if s.P50 != 7.5 || s.P95 != 7.5 || s.P99 != 7.5 {
			t.Errorf("n=%d: percentiles = %+v", n, s)
		}
	}
}

// TestPercentileTinySamples pins P99 on samples too small for a distinct
// 99th percentile: it interpolates toward the max and never exceeds it,
// for every tiny N (the loadgen report calls Summarize on whatever the
// run produced, including near-empty runs).
func TestPercentileTinySamples(t *testing.T) {
	for n := 1; n <= 5; n++ {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i + 1) // 1..n, already sorted
		}
		s := Summarize(xs)
		if s.P99 > s.Max {
			t.Errorf("n=%d: P99 = %v exceeds max %v", n, s.P99, s.Max)
		}
		if s.P99 < s.P95 || s.P95 < s.P50 {
			t.Errorf("n=%d: percentiles not monotone: %+v", n, s)
		}
		// With n points the P99 position is 0.99·(n-1); it must land in
		// the top segment.
		if n > 1 && s.P99 < float64(n-1) {
			t.Errorf("n=%d: P99 = %v below the top segment", n, s.P99)
		}
	}
	// Unsorted input must not change the answer.
	a := Summarize([]float64{3, 1, 2})
	b := Summarize([]float64{1, 2, 3})
	if a != b {
		t.Errorf("order-dependent summaries: %+v vs %+v", a, b)
	}
}

// Property: Min ≤ P50 ≤ Max and Min ≤ Mean ≤ Max for any non-empty sample.
func TestSummaryBoundsQuick(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		s := Summarize(xs)
		return s.Min <= s.P50 && s.P50 <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	if c.Total() != 0 || c.Fraction("x") != 0 {
		t.Error("fresh counter not zero")
	}
	c.Add("correct")
	c.Add("correct")
	c.Add("default")
	if c.Get("correct") != 2 || c.Get("default") != 1 || c.Get("unsafe") != 0 {
		t.Error("counts wrong")
	}
	if c.Total() != 3 {
		t.Errorf("Total = %d", c.Total())
	}
	if math.Abs(c.Fraction("correct")-2.0/3.0) > 1e-12 {
		t.Errorf("Fraction = %v", c.Fraction("correct"))
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "correct" || names[1] != "default" {
		t.Errorf("Names = %v", names)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Minimum nodes", "u", "m=0", "m=1")
	tb.AddRow(1, 2, 4)
	tb.AddRow(2, 3, 5)
	out := tb.String()
	if !strings.Contains(out, "Minimum nodes") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "m=0") {
		t.Error("missing header")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	if tb.Rows() != 2 {
		t.Errorf("Rows = %d", tb.Rows())
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(3.0)
	tb.AddRow(0.333333333)
	out := tb.String()
	if !strings.Contains(out, "3") || strings.Contains(out, "3.0000") {
		t.Errorf("integral float rendering:\n%s", out)
	}
	if !strings.Contains(out, "0.3333") {
		t.Errorf("fraction rendering:\n%s", out)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "name", "value")
	tb.AddRow("a", 1)
	tb.AddRow("longer-name", 22)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// All lines should be the same width after padding (modulo trailing
	// spaces on the final column, which pad() adds consistently).
	w := len(lines[0])
	for _, ln := range lines[1:] {
		if len(ln) != w {
			t.Errorf("ragged table:\n%s", out)
			break
		}
	}
}

func TestTableNoHeaders(t *testing.T) {
	tb := NewTable("t")
	tb.AddRow("x")
	if !strings.Contains(tb.String(), "x") {
		t.Error("row missing")
	}
}
