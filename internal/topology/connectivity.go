package topology

import (
	"fmt"

	"degradable/internal/types"
)

// VertexConnectivity returns κ(G): the minimum number of vertices whose
// removal disconnects the graph (n−1 for complete graphs, 0 when already
// disconnected). It is computed from Menger's theorem as the minimum, over
// non-adjacent pairs (s, t), of the maximum number of internally-vertex-
// disjoint s–t paths, via unit-capacity max-flow on the vertex-split
// digraph.
func (g *Graph) VertexConnectivity() int {
	if g.n == 1 {
		return 0
	}
	if !g.Connected() {
		return 0
	}
	best := g.n - 1 // complete-graph ceiling
	for s := 0; s < g.n; s++ {
		for t := s + 1; t < g.n; t++ {
			a, b := types.NodeID(s), types.NodeID(t)
			if g.HasEdge(a, b) {
				continue
			}
			f := newFlow(g, a, b)
			k := 0
			for k < best && f.augment() {
				k++
			}
			if k < best {
				best = k
			}
		}
	}
	return best
}

// DisjointPaths returns up to limit internally-vertex-disjoint paths from s
// to t, each of the form [s, ..., t]. If {s,t} is an edge, the direct
// two-node path can be among them. The number of returned paths is
// min(limit, local vertex connectivity of the pair). Results are
// deterministic for a given graph.
func (g *Graph) DisjointPaths(s, t types.NodeID, limit int) ([][]types.NodeID, error) {
	if !g.valid(s) || !g.valid(t) || s == t {
		return nil, fmt.Errorf("topology: bad path endpoints %d, %d", int(s), int(t))
	}
	if limit < 1 {
		return nil, fmt.Errorf("topology: limit must be positive, got %d", limit)
	}
	f := newFlow(g, s, t)
	for i := 0; i < limit; i++ {
		if !f.augment() {
			break
		}
	}
	return f.decompose(), nil
}

// flow is a unit-capacity max-flow instance on the vertex-split digraph:
// every vertex v becomes v_in (2v) and v_out (2v+1) joined by a capacity-1
// arc (capacity n for the endpoints); every undirected edge {u,v} becomes
// arcs u_out→v_in and v_out→u_in of capacity 1.
type flow struct {
	g    *Graph
	s, t types.NodeID
	size int
	cap  [][]int // original capacities
	res  [][]int // residual capacities
}

func vin(v types.NodeID) int  { return 2 * int(v) }
func vout(v types.NodeID) int { return 2*int(v) + 1 }

func newFlow(g *Graph, s, t types.NodeID) *flow {
	size := 2 * g.n
	f := &flow{g: g, s: s, t: t, size: size}
	f.cap = make([][]int, size)
	f.res = make([][]int, size)
	for i := range f.cap {
		f.cap[i] = make([]int, size)
		f.res[i] = make([]int, size)
	}
	set := func(x, y, c int) {
		f.cap[x][y] = c
		f.res[x][y] = c
	}
	for v := 0; v < g.n; v++ {
		id := types.NodeID(v)
		c := 1
		if id == s || id == t {
			c = g.n // effectively infinite
		}
		set(vin(id), vout(id), c)
	}
	for v := 0; v < g.n; v++ {
		for _, w := range g.Neighbors(types.NodeID(v)) {
			set(vout(types.NodeID(v)), vin(w), 1)
		}
	}
	return f
}

// augment finds one augmenting path by BFS (lowest node index first, so
// results are deterministic) and pushes one unit.
func (f *flow) augment() bool {
	src, dst := vout(f.s), vin(f.t)
	prev := make([]int, f.size)
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []int{src}
	found := false
	for len(queue) > 0 && !found {
		x := queue[0]
		queue = queue[1:]
		for y := 0; y < f.size; y++ {
			if f.res[x][y] <= 0 || prev[y] >= 0 {
				continue
			}
			prev[y] = x
			if y == dst {
				found = true
				break
			}
			queue = append(queue, y)
		}
	}
	if !found {
		return false
	}
	for y := dst; y != src; {
		x := prev[y]
		f.res[x][y]--
		f.res[y][x]++
		y = x
	}
	return true
}

// decompose extracts the pushed flow as vertex paths s..t, consuming the
// flow as it goes.
func (f *flow) decompose() [][]types.NodeID {
	flowOn := func(x, y int) int {
		if d := f.cap[x][y] - f.res[x][y]; d > 0 {
			return d
		}
		return 0
	}
	var paths [][]types.NodeID
	for {
		cur := vout(f.s)
		path := []types.NodeID{f.s}
		progressed := false
		for cur != vin(f.t) {
			next := -1
			for y := 0; y < f.size; y++ {
				if flowOn(cur, y) > 0 {
					next = y
					break
				}
			}
			if next < 0 {
				break
			}
			f.res[cur][next]++ // consume one unit
			progressed = true
			cur = next
			if cur%2 == 0 { // an in-node: record the vertex
				path = append(path, types.NodeID(cur/2))
			}
		}
		if !progressed || cur != vin(f.t) {
			return paths
		}
		paths = append(paths, path)
	}
}
