package topology

import (
	"fmt"

	"degradable/internal/types"
)

// VertexConnectivity returns κ(G): the minimum number of vertices whose
// removal disconnects the graph (n−1 for complete graphs, 0 when already
// disconnected). It is computed from Menger's theorem as the minimum, over
// non-adjacent pairs (s, t), of the maximum number of internally-vertex-
// disjoint s–t paths, via unit-capacity max-flow on the vertex-split
// digraph.
func (g *Graph) VertexConnectivity() int {
	if g.n == 1 {
		return 0
	}
	if !g.Connected() {
		return 0
	}
	best := g.n - 1 // complete-graph ceiling
	for s := 0; s < g.n; s++ {
		for t := s + 1; t < g.n; t++ {
			a, b := types.NodeID(s), types.NodeID(t)
			if g.HasEdge(a, b) {
				continue
			}
			f := newFlow(g, a, b)
			k := 0
			for k < best && f.augment() {
				k++
			}
			if k < best {
				best = k
			}
		}
	}
	return best
}

// MinVertexCut returns one minimum vertex cut: a smallest set of vertices
// whose removal disconnects the graph, extracted from the max-flow residual
// graph of the κ-achieving pair (a vertex v is in the cut when its split
// arc v_in→v_out is saturated with v_in residually reachable from the
// source and v_out not). Complete graphs have no cut and return nil; a
// disconnected graph's cut is the empty (non-nil) set. The cut-set-targeted
// fault placement of the chaos engine arms exactly these nodes, realizing
// the Theorem 3 necessity adversary on arbitrary graphs.
func (g *Graph) MinVertexCut() []types.NodeID {
	if g.n == 1 {
		return nil
	}
	if !g.Connected() {
		return []types.NodeID{}
	}
	best := g.n - 1
	var bs, bt types.NodeID
	found := false
	for s := 0; s < g.n; s++ {
		for t := s + 1; t < g.n; t++ {
			a, b := types.NodeID(s), types.NodeID(t)
			if g.HasEdge(a, b) {
				continue
			}
			f := newFlow(g, a, b)
			k := 0
			for k <= best && f.augment() {
				k++
			}
			if k < best || !found {
				best, bs, bt, found = k, a, b, true
			}
		}
	}
	if !found {
		return nil // complete graph: every pair is adjacent
	}
	// Re-run the flow with effectively infinite edge-arc capacities: the
	// flow value is unchanged (internal split arcs still constrain each
	// vertex to one path) but the min cut is then made of split arcs only,
	// so the residual boundary reads off a true vertex cut.
	f := newFlowCap(g, bs, bt, g.n)
	for f.augment() {
	}
	reach := f.reachable()
	var cut []types.NodeID
	for v := 0; v < g.n; v++ {
		id := types.NodeID(v)
		if id == bs || id == bt {
			continue
		}
		if reach[vin(id)] && !reach[vout(id)] {
			cut = append(cut, id)
		}
	}
	return cut
}

// reachable marks the residual-graph vertices reachable from the source
// after the flow has been saturated.
func (f *flow) reachable() []bool {
	seen := make([]bool, f.size)
	src := vout(f.s)
	seen[src] = true
	queue := []int{src}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for y := 0; y < f.size; y++ {
			if f.res[x][y] > 0 && !seen[y] {
				seen[y] = true
				queue = append(queue, y)
			}
		}
	}
	return seen
}

// DisjointPaths returns up to limit internally-vertex-disjoint paths from s
// to t, each of the form [s, ..., t]. If {s,t} is an edge, the direct
// two-node path can be among them. The number of returned paths is
// min(limit, local vertex connectivity of the pair). Results are
// deterministic for a given graph.
func (g *Graph) DisjointPaths(s, t types.NodeID, limit int) ([][]types.NodeID, error) {
	if !g.valid(s) || !g.valid(t) || s == t {
		return nil, fmt.Errorf("topology: bad path endpoints %d, %d", int(s), int(t))
	}
	if limit < 1 {
		return nil, fmt.Errorf("topology: limit must be positive, got %d", limit)
	}
	f := newFlow(g, s, t)
	for i := 0; i < limit; i++ {
		if !f.augment() {
			break
		}
	}
	return f.decompose(), nil
}

// flow is a unit-capacity max-flow instance on the vertex-split digraph:
// every vertex v becomes v_in (2v) and v_out (2v+1) joined by a capacity-1
// arc (capacity n for the endpoints); every undirected edge {u,v} becomes
// arcs u_out→v_in and v_out→u_in of capacity 1.
type flow struct {
	g    *Graph
	s, t types.NodeID
	size int
	cap  [][]int // original capacities
	res  [][]int // residual capacities
}

func vin(v types.NodeID) int  { return 2 * int(v) }
func vout(v types.NodeID) int { return 2*int(v) + 1 }

func newFlow(g *Graph, s, t types.NodeID) *flow { return newFlowCap(g, s, t, 1) }

// newFlowCap is newFlow with a configurable edge-arc capacity. Unit
// capacity keeps path decomposition trivial; MinVertexCut uses capacity n
// so the min cut lands on split arcs only.
func newFlowCap(g *Graph, s, t types.NodeID, edgeCap int) *flow {
	size := 2 * g.n
	f := &flow{g: g, s: s, t: t, size: size}
	f.cap = make([][]int, size)
	f.res = make([][]int, size)
	for i := range f.cap {
		f.cap[i] = make([]int, size)
		f.res[i] = make([]int, size)
	}
	set := func(x, y, c int) {
		f.cap[x][y] = c
		f.res[x][y] = c
	}
	for v := 0; v < g.n; v++ {
		id := types.NodeID(v)
		c := 1
		if id == s || id == t {
			c = g.n // effectively infinite
		}
		set(vin(id), vout(id), c)
	}
	for v := 0; v < g.n; v++ {
		for _, w := range g.Neighbors(types.NodeID(v)) {
			set(vout(types.NodeID(v)), vin(w), edgeCap)
		}
	}
	return f
}

// augment finds one augmenting path by BFS (lowest node index first, so
// results are deterministic) and pushes one unit.
func (f *flow) augment() bool {
	src, dst := vout(f.s), vin(f.t)
	prev := make([]int, f.size)
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []int{src}
	found := false
	for len(queue) > 0 && !found {
		x := queue[0]
		queue = queue[1:]
		for y := 0; y < f.size; y++ {
			if f.res[x][y] <= 0 || prev[y] >= 0 {
				continue
			}
			prev[y] = x
			if y == dst {
				found = true
				break
			}
			queue = append(queue, y)
		}
	}
	if !found {
		return false
	}
	for y := dst; y != src; {
		x := prev[y]
		f.res[x][y]--
		f.res[y][x]++
		y = x
	}
	return true
}

// decompose extracts the pushed flow as vertex paths s..t, consuming the
// flow as it goes.
func (f *flow) decompose() [][]types.NodeID {
	flowOn := func(x, y int) int {
		if d := f.cap[x][y] - f.res[x][y]; d > 0 {
			return d
		}
		return 0
	}
	var paths [][]types.NodeID
	for {
		cur := vout(f.s)
		path := []types.NodeID{f.s}
		progressed := false
		for cur != vin(f.t) {
			next := -1
			for y := 0; y < f.size; y++ {
				if flowOn(cur, y) > 0 {
					next = y
					break
				}
			}
			if next < 0 {
				break
			}
			f.res[cur][next]++ // consume one unit
			progressed = true
			cur = next
			if cur%2 == 0 { // an in-node: record the vertex
				path = append(path, types.NodeID(cur/2))
			}
		}
		if !progressed || cur != vin(f.t) {
			return paths
		}
		paths = append(paths, path)
	}
}
