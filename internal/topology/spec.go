package topology

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"degradable/internal/types"
)

// Spec is a serializable recipe for a graph: a family name plus its
// parameters, with an optional list of removed edges (the delta-debugger
// shaves a failing scenario's graph toward a minimal counterexample by
// appending to Removed). A Spec round-trips through its canonical
// "family:params" string form, so one string in a scenario's JSON replays
// the exact topology.
//
// Grammar (all parameters integers unless noted):
//
//	complete:N            K_N (κ = N−1)
//	ring:N                C_N (κ = 2)
//	hypercube:D           Q_D on 2^D nodes (κ = D)
//	harary:K:N            Harary H_{K,N} (κ = K)
//	bridge:N1:CUT:N2      two cliques joined through a CUT-node cut set (κ = CUT)
//	cliquering:K:S        ring of K cliques of size S, adjacent cliques
//	                      fully joined (κ = 2S for K ≥ 5; denser below)
//	gnp:N:P:SEED          random G(N, P) conditioned on connectivity
//	                      (P is a float; SEED makes the draw deterministic)
type Spec struct {
	Family string
	// A, B, C are the family's positional integer parameters (unused ones
	// stay zero): complete/ring/gnp use A=N; hypercube A=D; harary A=K,
	// B=N; bridge A=N1, B=CUT, C=N2; cliquering A=K, B=S.
	A, B, C int
	// P is gnp's edge probability.
	P float64
	// Seed drives gnp's deterministic draw.
	Seed int64
	// Removed lists edges (as [a, b] node pairs) deleted after
	// construction, in removal order.
	Removed [][2]int
}

// Families lists the family names ParseSpec accepts.
func Families() []string {
	return []string{"complete", "ring", "hypercube", "harary", "bridge", "cliquering", "gnp"}
}

// ParseSpec parses the canonical "family:params" form. The Removed list is
// not part of the string form (it travels as structured JSON alongside).
func ParseSpec(def string) (Spec, error) {
	parts := strings.Split(def, ":")
	sp := Spec{Family: parts[0]}
	ints := func(want int) ([]int, error) {
		if len(parts)-1 != want {
			return nil, fmt.Errorf("topology: %s wants %d parameters, got %d in %q", sp.Family, want, len(parts)-1, def)
		}
		out := make([]int, want)
		for i := range out {
			v, err := strconv.Atoi(parts[i+1])
			if err != nil {
				return nil, fmt.Errorf("topology: bad parameter %q in %q", parts[i+1], def)
			}
			out[i] = v
		}
		return out, nil
	}
	switch sp.Family {
	case "complete", "ring", "hypercube":
		v, err := ints(1)
		if err != nil {
			return Spec{}, err
		}
		sp.A = v[0]
	case "harary", "cliquering":
		v, err := ints(2)
		if err != nil {
			return Spec{}, err
		}
		sp.A, sp.B = v[0], v[1]
	case "bridge":
		v, err := ints(3)
		if err != nil {
			return Spec{}, err
		}
		sp.A, sp.B, sp.C = v[0], v[1], v[2]
	case "gnp":
		if len(parts) != 4 {
			return Spec{}, fmt.Errorf("topology: gnp wants N:P:SEED, got %q", def)
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			return Spec{}, fmt.Errorf("topology: bad gnp N %q", parts[1])
		}
		p, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || p <= 0 || p > 1 {
			return Spec{}, fmt.Errorf("topology: bad gnp P %q (want a float in (0,1])", parts[2])
		}
		seed, err := strconv.ParseInt(parts[3], 10, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("topology: bad gnp SEED %q", parts[3])
		}
		sp.A, sp.P, sp.Seed = n, p, seed
	default:
		return Spec{}, fmt.Errorf("topology: unknown graph family %q (want one of %s)", sp.Family, strings.Join(Families(), ", "))
	}
	if _, err := sp.Nodes(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// String renders the canonical "family:params" form.
func (sp Spec) String() string {
	switch sp.Family {
	case "complete", "ring", "hypercube":
		return fmt.Sprintf("%s:%d", sp.Family, sp.A)
	case "harary", "cliquering":
		return fmt.Sprintf("%s:%d:%d", sp.Family, sp.A, sp.B)
	case "bridge":
		return fmt.Sprintf("%s:%d:%d:%d", sp.Family, sp.A, sp.B, sp.C)
	case "gnp":
		return fmt.Sprintf("gnp:%d:%s:%d", sp.A, strconv.FormatFloat(sp.P, 'g', -1, 64), sp.Seed)
	default:
		return fmt.Sprintf("%s:?", sp.Family)
	}
}

// Nodes returns the node count the spec builds, without building it.
func (sp Spec) Nodes() (int, error) {
	switch sp.Family {
	case "complete":
		if sp.A < 1 {
			return 0, fmt.Errorf("topology: complete needs N >= 1, got %d", sp.A)
		}
		return sp.A, nil
	case "ring":
		if sp.A < 3 {
			return 0, fmt.Errorf("topology: ring needs N >= 3, got %d", sp.A)
		}
		return sp.A, nil
	case "hypercube":
		if sp.A < 1 || sp.A > 6 {
			return 0, fmt.Errorf("topology: hypercube dim %d out of range [1,6]", sp.A)
		}
		return 1 << uint(sp.A), nil
	case "harary":
		if sp.A < 2 || sp.A >= sp.B || (sp.A%2 == 1 && sp.B%2 == 1) {
			return 0, fmt.Errorf("topology: harary needs 2 <= K < N (even N for odd K), got K=%d N=%d", sp.A, sp.B)
		}
		return sp.B, nil
	case "bridge":
		if sp.A < 1 || sp.B < 1 || sp.C < 1 {
			return 0, fmt.Errorf("topology: bridge needs positive N1:CUT:N2, got %d:%d:%d", sp.A, sp.B, sp.C)
		}
		return sp.A + sp.B + sp.C, nil
	case "cliquering":
		if sp.A < 3 || sp.B < 1 {
			return 0, fmt.Errorf("topology: cliquering needs K >= 3 cliques of S >= 1, got K=%d S=%d", sp.A, sp.B)
		}
		return sp.A * sp.B, nil
	case "gnp":
		if sp.A < 2 {
			return 0, fmt.Errorf("topology: gnp needs N >= 2, got %d", sp.A)
		}
		return sp.A, nil
	default:
		return 0, fmt.Errorf("topology: unknown graph family %q", sp.Family)
	}
}

// Build materializes the spec: family construction, then edge removals in
// order. The result is deterministic (gnp included — the draw is seeded).
func (sp Spec) Build() (*Graph, error) {
	n, err := sp.Nodes()
	if err != nil {
		return nil, err
	}
	if n > types.MaxNodeSetID+1 {
		return nil, fmt.Errorf("topology: %s builds %d nodes, limit %d", sp.String(), n, types.MaxNodeSetID+1)
	}
	var g *Graph
	switch sp.Family {
	case "complete":
		g, err = Complete(sp.A)
	case "ring":
		g, err = Cycle(sp.A)
	case "hypercube":
		g, err = Hypercube(sp.A)
	case "harary":
		g, err = Harary(sp.A, sp.B)
	case "bridge":
		g, err = Bridge(sp.A, sp.B, sp.C)
	case "cliquering":
		g, err = RingOfCliques(sp.A, sp.B)
	case "gnp":
		g, err = Gnp(sp.A, sp.P, sp.Seed)
	}
	if err != nil {
		return nil, err
	}
	for _, e := range sp.Removed {
		a, b := types.NodeID(e[0]), types.NodeID(e[1])
		if !g.HasEdge(a, b) {
			return nil, fmt.Errorf("topology: %s has no edge {%d,%d} to remove", sp.String(), e[0], e[1])
		}
		g.RemoveEdge(a, b)
	}
	return g, nil
}

// RingOfCliques returns k cliques of size s arranged in a ring, each pair
// of adjacent cliques fully joined. For k ≥ 5 its vertex connectivity is
// 2s (a cut must sever both ring directions); smaller rings are denser.
func RingOfCliques(k, s int) (*Graph, error) {
	if k < 3 || s < 1 {
		return nil, fmt.Errorf("topology: ring-of-cliques needs k >= 3, s >= 1, got k=%d s=%d", k, s)
	}
	g, err := NewGraph(k * s)
	if err != nil {
		return nil, err
	}
	member := func(c, i int) types.NodeID { return types.NodeID(c*s + i) }
	for c := 0; c < k; c++ {
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				if err := g.AddEdge(member(c, i), member(c, j)); err != nil {
					return nil, err
				}
			}
			for j := 0; j < s; j++ {
				if err := g.AddEdge(member(c, i), member((c+1)%k, j)); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// gnpAttempts bounds how many derived seeds a Gnp draw may burn looking for
// a connected sample before giving up.
const gnpAttempts = 64

// Gnp returns a random G(n, p) conditioned on connectivity: each edge is
// present independently with probability p, and disconnected draws are
// rejected (up to gnpAttempts derived re-draws, all deterministic in seed).
func Gnp(n int, p float64, seed int64) (*Graph, error) {
	if n < 2 || p <= 0 || p > 1 {
		return nil, fmt.Errorf("topology: gnp needs n >= 2 and p in (0,1], got n=%d p=%v", n, p)
	}
	for attempt := 0; attempt < gnpAttempts; attempt++ {
		rng := rand.New(rand.NewSource(seed + int64(attempt)*6364136223846793005))
		g, err := NewGraph(n)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < p {
					if err := g.AddEdge(types.NodeID(i), types.NodeID(j)); err != nil {
						return nil, err
					}
				}
			}
		}
		if g.Connected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("topology: gnp(%d, %v, %d) produced no connected graph in %d draws", n, p, seed, gnpAttempts)
}
