package topology

import (
	"reflect"
	"testing"

	"degradable/internal/types"
)

func TestParseSpecRoundTripAndKappa(t *testing.T) {
	cases := []struct {
		def   string
		nodes int
		kappa int
	}{
		{"complete:7", 7, 6},
		{"ring:6", 6, 2},
		{"hypercube:4", 16, 4},
		{"harary:4:9", 9, 4},
		{"harary:3:8", 8, 3},
		{"bridge:3:4:3", 10, 4},
		{"bridge:2:2:2", 6, 2},
		{"cliquering:5:2", 10, 4},
	}
	for _, tc := range cases {
		sp, err := ParseSpec(tc.def)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", tc.def, err)
		}
		if got := sp.String(); got != tc.def {
			t.Errorf("%q round-trips to %q", tc.def, got)
		}
		if n, err := sp.Nodes(); err != nil || n != tc.nodes {
			t.Errorf("%q Nodes() = %d, %v; want %d", tc.def, n, err, tc.nodes)
		}
		g, err := sp.Build()
		if err != nil {
			t.Fatalf("%q Build: %v", tc.def, err)
		}
		if got := g.VertexConnectivity(); got != tc.kappa {
			t.Errorf("%q: κ = %d, want %d", tc.def, got, tc.kappa)
		}
	}
}

func TestParseSpecRejectsMalformed(t *testing.T) {
	for _, def := range []string{
		"", "nosuch:5", "complete", "complete:x", "harary:4", "harary:9:4",
		"harary:3:9", "gnp:5:0.5", "gnp:5:1.5:1", "gnp:5:zz:1", "bridge:0:2:2",
		"hypercube:7", "ring:2", "cliquering:2:3",
	} {
		if _, err := ParseSpec(def); err == nil {
			t.Errorf("ParseSpec(%q) accepted", def)
		}
	}
}

func TestGnpDeterministicAndConnected(t *testing.T) {
	sp, err := ParseSpec("gnp:9:0.5:7")
	if err != nil {
		t.Fatal(err)
	}
	g1, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !g1.Connected() {
		t.Fatal("gnp draw not connected")
	}
	if !reflect.DeepEqual(g1.EdgeList(), g2.EdgeList()) {
		t.Fatal("gnp draws with equal seeds differ")
	}
	sp.Seed = 8
	g3, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(g1.EdgeList(), g3.EdgeList()) {
		t.Fatal("gnp draws with different seeds coincide (suspicious)")
	}
}

func TestSpecRemovedEdges(t *testing.T) {
	sp, err := ParseSpec("complete:5")
	if err != nil {
		t.Fatal(err)
	}
	sp.Removed = [][2]int{{0, 1}, {0, 2}}
	g, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 1) || g.HasEdge(0, 2) {
		t.Fatal("removed edges still present")
	}
	if got := g.VertexConnectivity(); got != 2 {
		t.Fatalf("κ after removals = %d, want 2", got)
	}
	sp.Removed = [][2]int{{0, 1}, {0, 1}}
	if _, err := sp.Build(); err == nil {
		t.Fatal("double removal accepted")
	}
}

func TestMinVertexCut(t *testing.T) {
	for _, def := range []string{"ring:6", "harary:3:8", "harary:4:9", "bridge:3:2:3", "hypercube:3", "cliquering:5:2"} {
		sp, err := ParseSpec(def)
		if err != nil {
			t.Fatal(err)
		}
		g, err := sp.Build()
		if err != nil {
			t.Fatal(err)
		}
		kappa := g.VertexConnectivity()
		cut := g.MinVertexCut()
		if len(cut) != kappa {
			t.Fatalf("%s: |cut| = %d, κ = %d", def, len(cut), kappa)
		}
		// Removing the cut must disconnect the graph: rebuild without the
		// cut nodes' edges and check the remaining nodes split.
		if !disconnectsWithout(g, cut) {
			t.Fatalf("%s: removing cut %v does not disconnect", def, cut)
		}
	}
	comp, _ := Complete(5)
	if cut := comp.MinVertexCut(); cut != nil {
		t.Fatalf("complete graph has a cut %v", cut)
	}
}

// disconnectsWithout reports whether g minus the given vertices is
// disconnected (or has fewer than 2 vertices left, vacuously true).
func disconnectsWithout(g *Graph, cut []types.NodeID) bool {
	var gone types.NodeSet
	for _, id := range cut {
		gone = gone.Add(id)
	}
	var start types.NodeID = -1
	remaining := 0
	for v := 0; v < g.N(); v++ {
		if !gone.Contains(types.NodeID(v)) {
			remaining++
			if start < 0 {
				start = types.NodeID(v)
			}
		}
	}
	if remaining < 2 {
		return true
	}
	seen := map[types.NodeID]bool{start: true}
	stack := []types.NodeID{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Neighbors(v) {
			if gone.Contains(w) || seen[w] {
				continue
			}
			seen[w] = true
			stack = append(stack, w)
		}
	}
	return len(seen) < remaining
}
