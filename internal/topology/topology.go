// Package topology provides the undirected-graph substrate for the paper's
// connectivity results (Theorem 3): graph construction, vertex connectivity
// via Menger's theorem (unit-capacity max-flow on the vertex-split digraph),
// and extraction of internally-vertex-disjoint paths used by the transport
// layer to emulate reliable channels over incompletely connected networks.
package topology

import (
	"fmt"

	"degradable/internal/types"
)

// Graph is a simple undirected graph over nodes 0..n-1.
type Graph struct {
	n   int
	adj []types.NodeSet
}

// NewGraph returns an empty graph on n nodes (n ≤ 64 to match NodeSet).
func NewGraph(n int) (*Graph, error) {
	if n < 1 || n > types.MaxNodeSetID+1 {
		return nil, fmt.Errorf("topology: n=%d out of range [1,%d]", n, types.MaxNodeSetID+1)
	}
	return &Graph{n: n, adj: make([]types.NodeSet, n)}, nil
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the undirected edge {a, b}. Self-loops and out-of-range
// nodes are rejected.
func (g *Graph) AddEdge(a, b types.NodeID) error {
	if a == b {
		return fmt.Errorf("topology: self-loop at %d", int(a))
	}
	if !g.valid(a) || !g.valid(b) {
		return fmt.Errorf("topology: edge {%d,%d} out of range", int(a), int(b))
	}
	g.adj[a] = g.adj[a].Add(b)
	g.adj[b] = g.adj[b].Add(a)
	return nil
}

// RemoveEdge deletes the undirected edge {a, b}; absent edges and
// out-of-range nodes are a no-op. The delta-debugging shrinker uses it to
// shave a failing scenario's graph toward a minimal counterexample.
func (g *Graph) RemoveEdge(a, b types.NodeID) {
	if !g.valid(a) || !g.valid(b) {
		return
	}
	g.adj[a] = g.adj[a].Remove(b)
	g.adj[b] = g.adj[b].Remove(a)
}

// EdgeList returns every edge as an ascending [a, b] pair (a < b), in
// deterministic order.
func (g *Graph) EdgeList() [][2]types.NodeID {
	var edges [][2]types.NodeID
	for a := 0; a < g.n; a++ {
		for _, b := range g.adj[a].IDs() {
			if types.NodeID(a) < b {
				edges = append(edges, [2]types.NodeID{types.NodeID(a), b})
			}
		}
	}
	return edges
}

// HasEdge reports whether {a, b} is an edge.
func (g *Graph) HasEdge(a, b types.NodeID) bool {
	return g.valid(a) && g.valid(b) && g.adj[a].Contains(b)
}

// Neighbors returns a's neighbours in ascending order.
func (g *Graph) Neighbors(a types.NodeID) []types.NodeID {
	if !g.valid(a) {
		return nil
	}
	return g.adj[a].IDs()
}

// Degree returns the number of neighbours of a.
func (g *Graph) Degree(a types.NodeID) int {
	if !g.valid(a) {
		return 0
	}
	return g.adj[a].Len()
}

// Edges returns the number of edges.
func (g *Graph) Edges() int {
	total := 0
	for _, s := range g.adj {
		total += s.Len()
	}
	return total / 2
}

func (g *Graph) valid(a types.NodeID) bool { return a >= 0 && int(a) < g.n }

// Connected reports whether the graph is connected.
func (g *Graph) Connected() bool {
	if g.n == 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []types.NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.adj[v].IDs() {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == g.n
}

// Complete returns K_n.
func Complete(n int) (*Graph, error) {
	g, err := NewGraph(n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := g.AddEdge(types.NodeID(i), types.NodeID(j)); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// Cycle returns C_n (n ≥ 3), which has vertex connectivity 2.
func Cycle(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("topology: cycle needs n >= 3, got %d", n)
	}
	g, err := NewGraph(n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if err := g.AddEdge(types.NodeID(i), types.NodeID((i+1)%n)); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Hypercube returns the dim-dimensional hypercube Q_dim on 2^dim nodes,
// which has vertex connectivity dim.
func Hypercube(dim int) (*Graph, error) {
	if dim < 1 || dim > 6 {
		return nil, fmt.Errorf("topology: hypercube dim %d out of range [1,6]", dim)
	}
	n := 1 << uint(dim)
	g, err := NewGraph(n)
	if err != nil {
		return nil, err
	}
	for v := 0; v < n; v++ {
		for b := 0; b < dim; b++ {
			w := v ^ (1 << uint(b))
			if v < w {
				if err := g.AddEdge(types.NodeID(v), types.NodeID(w)); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// Harary returns the Harary graph H_{k,n}: the k-connected graph on n nodes
// with the minimum number of edges. Requires 2 ≤ k < n; when k is odd, n
// must be even.
func Harary(k, n int) (*Graph, error) {
	if k < 2 || k >= n {
		return nil, fmt.Errorf("topology: harary needs 2 <= k < n, got k=%d n=%d", k, n)
	}
	if k%2 == 1 && n%2 == 1 {
		return nil, fmt.Errorf("topology: harary with odd k=%d needs even n, got %d", k, n)
	}
	g, err := NewGraph(n)
	if err != nil {
		return nil, err
	}
	half := k / 2
	for i := 0; i < n; i++ {
		for d := 1; d <= half; d++ {
			if err := g.AddEdge(types.NodeID(i), types.NodeID((i+d)%n)); err != nil {
				return nil, err
			}
		}
	}
	if k%2 == 1 {
		for i := 0; i < n/2; i++ {
			if err := g.AddEdge(types.NodeID(i), types.NodeID(i+n/2)); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// Bridge returns the Theorem-3 proof topology: a clique G1 of size n1 and a
// clique G2 of size n2 joined only through a fully connected cut set F of
// size cut. Nodes are laid out [G1 | F | G2]; its vertex connectivity is
// exactly cut (for n1, n2 ≥ 1).
func Bridge(n1, cut, n2 int) (*Graph, error) {
	if n1 < 1 || n2 < 1 || cut < 1 {
		return nil, fmt.Errorf("topology: bridge needs positive sizes, got %d/%d/%d", n1, cut, n2)
	}
	n := n1 + cut + n2
	g, err := NewGraph(n)
	if err != nil {
		return nil, err
	}
	// G1 ∪ F is a clique; F ∪ G2 is a clique.
	for i := 0; i < n1+cut; i++ {
		for j := i + 1; j < n1+cut; j++ {
			if err := g.AddEdge(types.NodeID(i), types.NodeID(j)); err != nil {
				return nil, err
			}
		}
	}
	for i := n1; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := g.AddEdge(types.NodeID(i), types.NodeID(j)); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// BridgeParts returns the three node groups of a Bridge(n1, cut, n2) layout.
func BridgeParts(n1, cut, n2 int) (g1, f, g2 []types.NodeID) {
	for i := 0; i < n1; i++ {
		g1 = append(g1, types.NodeID(i))
	}
	for i := n1; i < n1+cut; i++ {
		f = append(f, types.NodeID(i))
	}
	for i := n1 + cut; i < n1+cut+n2; i++ {
		g2 = append(g2, types.NodeID(i))
	}
	return g1, f, g2
}
