package topology

import (
	"testing"
	"testing/quick"

	"degradable/internal/types"
)

func must(g *Graph, err error) *Graph {
	if err != nil {
		panic(err)
	}
	return g
}

func TestNewGraphValidation(t *testing.T) {
	if _, err := NewGraph(0); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := NewGraph(65); err == nil {
		t.Error("n=65 should error")
	}
	if _, err := NewGraph(64); err != nil {
		t.Errorf("n=64 should be fine: %v", err)
	}
}

func TestAddEdge(t *testing.T) {
	g := must(NewGraph(4))
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge not symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Error("phantom edge")
	}
	if err := g.AddEdge(2, 2); err == nil {
		t.Error("self-loop should error")
	}
	if err := g.AddEdge(0, 9); err == nil {
		t.Error("out-of-range should error")
	}
	if g.Edges() != 1 {
		t.Errorf("Edges = %d", g.Edges())
	}
	if g.Degree(0) != 1 || g.Degree(3) != 0 {
		t.Error("degrees wrong")
	}
}

func TestComplete(t *testing.T) {
	g := must(Complete(5))
	if g.Edges() != 10 {
		t.Errorf("K5 edges = %d", g.Edges())
	}
	if got := g.VertexConnectivity(); got != 4 {
		t.Errorf("κ(K5) = %d, want 4", got)
	}
}

func TestCycle(t *testing.T) {
	g := must(Cycle(6))
	if g.Edges() != 6 {
		t.Errorf("C6 edges = %d", g.Edges())
	}
	if got := g.VertexConnectivity(); got != 2 {
		t.Errorf("κ(C6) = %d, want 2", got)
	}
	if _, err := Cycle(2); err == nil {
		t.Error("C2 should error")
	}
}

func TestHypercube(t *testing.T) {
	for dim := 1; dim <= 4; dim++ {
		g := must(Hypercube(dim))
		if g.N() != 1<<uint(dim) {
			t.Errorf("Q%d has %d nodes", dim, g.N())
		}
		if got := g.VertexConnectivity(); got != dim {
			t.Errorf("κ(Q%d) = %d, want %d", dim, got, dim)
		}
	}
	if _, err := Hypercube(0); err == nil {
		t.Error("Q0 should error")
	}
	if _, err := Hypercube(7); err == nil {
		t.Error("dim beyond NodeSet range should error")
	}
}

func TestHarary(t *testing.T) {
	tests := []struct{ k, n int }{
		{2, 5}, {3, 8}, {4, 9}, {4, 10}, {5, 12},
	}
	for _, tt := range tests {
		g := must(Harary(tt.k, tt.n))
		if got := g.VertexConnectivity(); got != tt.k {
			t.Errorf("κ(H_{%d,%d}) = %d, want %d", tt.k, tt.n, got, tt.k)
		}
	}
	if _, err := Harary(3, 7); err == nil {
		t.Error("odd k with odd n should error")
	}
	if _, err := Harary(1, 5); err == nil {
		t.Error("k<2 should error")
	}
	if _, err := Harary(5, 5); err == nil {
		t.Error("k>=n should error")
	}
}

func TestBridge(t *testing.T) {
	// Theorem-3 topology: cut of size 3 joining cliques of 4 and 4.
	g := must(Bridge(4, 3, 4))
	if g.N() != 11 {
		t.Fatalf("N = %d", g.N())
	}
	if got := g.VertexConnectivity(); got != 3 {
		t.Errorf("κ(bridge) = %d, want 3", got)
	}
	g1, f, g2 := BridgeParts(4, 3, 4)
	if len(g1) != 4 || len(f) != 3 || len(g2) != 4 {
		t.Fatalf("parts = %v %v %v", g1, f, g2)
	}
	// No direct G1–G2 edges.
	for _, a := range g1 {
		for _, b := range g2 {
			if g.HasEdge(a, b) {
				t.Errorf("unexpected direct edge %d–%d", int(a), int(b))
			}
		}
	}
	if _, err := Bridge(0, 1, 1); err == nil {
		t.Error("empty side should error")
	}
}

func TestConnected(t *testing.T) {
	g := must(NewGraph(3))
	if g.Connected() {
		t.Error("edgeless graph is not connected")
	}
	_ = g.AddEdge(0, 1)
	if g.Connected() {
		t.Error("still disconnected")
	}
	_ = g.AddEdge(1, 2)
	if !g.Connected() {
		t.Error("path graph is connected")
	}
	single := must(NewGraph(1))
	if !single.Connected() {
		t.Error("K1 is connected")
	}
	if single.VertexConnectivity() != 0 {
		t.Error("κ(K1) = 0")
	}
}

func TestDisconnectedConnectivity(t *testing.T) {
	g := must(NewGraph(4))
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(2, 3)
	if got := g.VertexConnectivity(); got != 0 {
		t.Errorf("κ(disconnected) = %d, want 0", got)
	}
}

func TestDisjointPathsComplete(t *testing.T) {
	g := must(Complete(5))
	paths, err := g.DisjointPaths(0, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("K5 disjoint paths = %d, want 4", len(paths))
	}
	validateDisjoint(t, g, paths, 0, 4)
}

func TestDisjointPathsCycle(t *testing.T) {
	g := must(Cycle(6))
	paths, err := g.DisjointPaths(0, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("C6 disjoint paths = %d, want 2", len(paths))
	}
	validateDisjoint(t, g, paths, 0, 3)
}

func TestDisjointPathsLimit(t *testing.T) {
	g := must(Complete(6))
	paths, err := g.DisjointPaths(0, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("limited paths = %d, want 2", len(paths))
	}
}

func TestDisjointPathsValidation(t *testing.T) {
	g := must(Complete(4))
	if _, err := g.DisjointPaths(0, 0, 1); err == nil {
		t.Error("s == t should error")
	}
	if _, err := g.DisjointPaths(0, 9, 1); err == nil {
		t.Error("out of range should error")
	}
	if _, err := g.DisjointPaths(0, 1, 0); err == nil {
		t.Error("limit 0 should error")
	}
}

func TestDisjointPathsBridge(t *testing.T) {
	// Every G1→G2 path must pass through the cut, so path count = cut size.
	g := must(Bridge(3, 2, 3))
	g1, f, g2 := BridgeParts(3, 2, 3)
	paths, err := g.DisjointPaths(g1[0], g2[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths through cut = %d, want 2", len(paths))
	}
	validateDisjoint(t, g, paths, g1[0], g2[0])
	for _, p := range paths {
		throughCut := false
		for _, v := range p[1 : len(p)-1] {
			for _, c := range f {
				if v == c {
					throughCut = true
				}
			}
		}
		if !throughCut {
			t.Errorf("path %v bypasses the cut", p)
		}
	}
}

// validateDisjoint checks each path is a real path from s to t and that the
// paths share no internal vertices.
func validateDisjoint(t *testing.T, g *Graph, paths [][]types.NodeID, s, o types.NodeID) {
	t.Helper()
	used := make(map[types.NodeID]bool)
	for _, p := range paths {
		if len(p) < 2 || p[0] != s || p[len(p)-1] != o {
			t.Fatalf("bad endpoints in %v", p)
		}
		for i := 0; i+1 < len(p); i++ {
			if !g.HasEdge(p[i], p[i+1]) {
				t.Fatalf("non-edge %d–%d in %v", int(p[i]), int(p[i+1]), p)
			}
		}
		for _, v := range p[1 : len(p)-1] {
			if used[v] {
				t.Fatalf("vertex %d reused across paths", int(v))
			}
			used[v] = true
		}
	}
}

// Property: for Harary graphs, DisjointPaths between any pair finds at least
// κ = k paths (Menger), and VertexConnectivity equals k.
func TestMengerQuick(t *testing.T) {
	f := func(kRaw, nRaw uint8) bool {
		k := int(kRaw%3)*2 + 2 // 2, 4, 6
		n := k + 2 + int(nRaw%6)
		g, err := Harary(k, n)
		if err != nil {
			return true // skip infeasible
		}
		paths, err := g.DisjointPaths(0, types.NodeID(n/2), n)
		if err != nil {
			return false
		}
		return len(paths) >= k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNeighborsOutOfRange(t *testing.T) {
	g := must(Complete(3))
	if g.Neighbors(-1) != nil || g.Neighbors(5) != nil {
		t.Error("out-of-range Neighbors should be nil")
	}
	if g.Degree(9) != 0 {
		t.Error("out-of-range Degree should be 0")
	}
}
