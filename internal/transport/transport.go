// Package transport emulates the point-to-point channels of the agreement
// protocols over incompletely connected networks, realizing the sufficiency
// half of Theorem 3 (connectivity m+u+1 suffices for m/u-degradable
// agreement).
//
// A logical message between non-adjacent nodes is routed over m+u+1
// internally-vertex-disjoint paths. Every faulty intermediate node on a path
// may rewrite or drop the copy it relays. The receiver accepts the value
// carried by at least m+1 path copies when that value is unique
// (VOTE(m+1, copies)); otherwise it receives the default value.
//
// Guarantees delivered to the protocol layer (proved in the tests):
//
//   - f ≤ m faults: at most m of the m+u+1 paths are corrupted, so the true
//     value arrives on ≥ u+1 ≥ m+1 paths while any forged value appears on
//     ≤ m < m+1 paths — the channel is perfect, matching §4's assumption (a).
//   - m < f ≤ u faults: the true value still arrives on ≥ m+1 paths, but a
//     coordinated forgery may also reach m+1 copies, tripping the tie rule —
//     the channel delivers the true value or V_d, which is exactly the
//     degradation (a message replaced by a detectable absence) that the
//     algorithm tolerates in its degraded regime (§6.1).
//
// Adjacent nodes use their direct wire and are never degraded.
package transport

import (
	"fmt"

	"degradable/internal/netsim"
	"degradable/internal/obs"
	"degradable/internal/topology"
	"degradable/internal/types"
	"degradable/internal/vote"
)

// RelayCorruptor decides what a faulty relay node does to a message copy
// passing through it: return the (possibly rewritten) value, or ok=false to
// drop the copy.
type RelayCorruptor func(relay types.NodeID, m types.Message, v types.Value) (types.Value, bool)

// Names of the channel's obs counters, in index order.
const (
	// CounterDegraded counts deliveries whose accepted value differed from
	// the sent one (degraded to V_d — or, below the Theorem 3 bound, to a
	// forged value).
	CounterDegraded = iota
	// CounterForwarded counts path-copy relay transmissions.
	CounterForwarded
	numCounters
)

// CounterNames are the unified-snapshot names of the channel's counters.
var CounterNames = []string{"transport_degraded_total", "transport_forwarded_total"}

// Channel is a netsim.Channel that routes every delivery over vertex-
// disjoint paths of the given graph with Byzantine relays interposed.
type Channel struct {
	g        *topology.Graph
	m        int
	paths    map[[2]types.NodeID][][]types.NodeID
	faulty   map[types.NodeID]RelayCorruptor
	counters *obs.CounterSet

	// Degraded mirrors the transport_degraded_total counter.
	//
	// Deprecated: read Stats() instead; the mutable int view predates the
	// obs spine and is kept one release for EXPERIMENTS.md flows.
	Degraded int
	// Forwarded mirrors the transport_forwarded_total counter.
	//
	// Deprecated: read Stats() instead.
	Forwarded int
}

var _ netsim.Channel = (*Channel)(nil)

// Stats returns the channel's accounting in the unified snapshot schema.
func (c *Channel) Stats() obs.Snapshot { return c.counters.Snapshot() }

// New builds a disjoint-path channel for an m/u instance over g. It
// precomputes m+u+1 disjoint paths for every ordered pair of nodes and fails
// if the graph's pairwise connectivity is insufficient (Theorem 3
// necessity: such a graph cannot support the agreement).
func New(g *topology.Graph, m, u int, faulty map[types.NodeID]RelayCorruptor) (*Channel, error) {
	return build(g, m, u, faulty, true)
}

// NewLoose is New without the connectivity requirement: pairs with fewer
// than m+u+1 disjoint paths route over however many exist. It exists only
// for the lower-bound demonstrations, which run the protocol on topologies
// Theorem 3 proves inadequate and observe the resulting violation.
func NewLoose(g *topology.Graph, m, u int, faulty map[types.NodeID]RelayCorruptor) (*Channel, error) {
	return build(g, m, u, faulty, false)
}

func build(g *topology.Graph, m, u int, faulty map[types.NodeID]RelayCorruptor, strict bool) (*Channel, error) {
	if g == nil {
		return nil, fmt.Errorf("transport: nil graph")
	}
	if m < 0 || u < m || u < 1 {
		return nil, fmt.Errorf("transport: infeasible m=%d u=%d", m, u)
	}
	need := m + u + 1
	c := &Channel{
		g:        g,
		m:        m,
		paths:    make(map[[2]types.NodeID][][]types.NodeID),
		faulty:   faulty,
		counters: obs.NewCounterSet(CounterNames...),
	}
	n := g.N()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			s, t := types.NodeID(a), types.NodeID(b)
			if g.HasEdge(s, t) {
				continue // direct wire
			}
			ps, err := g.DisjointPaths(s, t, need)
			if err != nil {
				return nil, err
			}
			if strict && len(ps) < need {
				return nil, fmt.Errorf(
					"transport: only %d disjoint paths between %d and %d, need %d (connectivity below m+u+1)",
					len(ps), a, b, need)
			}
			c.paths[[2]types.NodeID{s, t}] = ps
		}
	}
	return c, nil
}

// Deliver implements netsim.Channel.
func (c *Channel) Deliver(m types.Message) (types.Message, bool) {
	if c.g.HasEdge(m.From, m.To) {
		return m, true // direct wire, never degraded
	}
	ps, ok := c.paths[[2]types.NodeID{m.From, m.To}]
	if !ok {
		// No routes (shouldn't happen after New's validation).
		return types.Message{}, false
	}
	copies := make([]types.Value, 0, len(ps))
	for _, p := range ps {
		v := m.Value
		dropped := false
		for _, hop := range p[1 : len(p)-1] {
			c.counters.Inc(CounterForwarded)
			c.Forwarded++
			corrupt, isFaulty := c.faulty[hop]
			if !isFaulty {
				continue
			}
			nv, keep := corrupt(hop, m, v)
			if !keep {
				dropped = true
				break
			}
			v = nv
		}
		if !dropped {
			copies = append(copies, v)
		}
	}
	accepted := vote.Vote(c.m+1, copies)
	if accepted != m.Value {
		c.counters.Inc(CounterDegraded)
		c.Degraded++
	}
	m.Value = accepted
	return m, true
}

// FlipTo returns a corruptor that rewrites every copy to a fixed value —
// the cut-set behaviour in the Theorem 3 impossibility scenario.
func FlipTo(v types.Value) RelayCorruptor {
	return func(_ types.NodeID, _ types.Message, _ types.Value) (types.Value, bool) {
		return v, true
	}
}

// DropAll returns a corruptor that drops every copy passing through.
func DropAll() RelayCorruptor {
	return func(types.NodeID, types.Message, types.Value) (types.Value, bool) {
		return types.Default, false
	}
}

// FlipCrossing returns the Theorem-3 proof behaviour: copies of messages
// whose endpoints lie in different sides (per side membership) are rewritten
// to forged; all other copies are rewritten to other.
func FlipCrossing(side1 types.NodeSet, forged, other types.Value) RelayCorruptor {
	return func(_ types.NodeID, m types.Message, _ types.Value) (types.Value, bool) {
		if side1.Contains(m.From) != side1.Contains(m.To) {
			return forged, true
		}
		return other, true
	}
}
