package transport_test

import (
	"fmt"
	"testing"

	"degradable/internal/adversary"
	"degradable/internal/core"
	"degradable/internal/netsim"
	"degradable/internal/runner"
	"degradable/internal/topology"
	"degradable/internal/transport"
	"degradable/internal/types"
)

const (
	alpha types.Value = 100
	beta  types.Value = 200
)

func must(g *topology.Graph, err error) *topology.Graph {
	if err != nil {
		panic(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	g := must(topology.Harary(4, 8))
	if _, err := transport.New(nil, 1, 2, nil); err == nil {
		t.Error("nil graph should error")
	}
	if _, err := transport.New(g, 2, 1, nil); err == nil {
		t.Error("m > u should error")
	}
	if _, err := transport.New(g, 1, 2, nil); err != nil {
		t.Errorf("κ=4 graph with m+u+1=4 should work: %v", err)
	}
	// Insufficient connectivity: cycle has κ=2 < m+u+1=4.
	if _, err := transport.New(must(topology.Cycle(6)), 1, 2, nil); err == nil {
		t.Error("κ=2 graph should be rejected for m=1,u=2")
	}
}

func TestDirectWireUntouched(t *testing.T) {
	g := must(topology.Complete(4))
	ch, err := transport.New(g, 1, 1, map[types.NodeID]transport.RelayCorruptor{
		2: transport.FlipTo(beta),
	})
	if err != nil {
		t.Fatal(err)
	}
	m, ok := ch.Deliver(types.Message{From: 0, To: 1, Value: alpha})
	if !ok || m.Value != alpha {
		t.Errorf("direct delivery corrupted: %v %v", m.Value, ok)
	}
}

func TestPerfectChannelUpToM(t *testing.T) {
	// Harary(4, 9): κ = 4 = m+u+1 for m=1, u=2. One faulty relay (≤ m)
	// cannot corrupt a routed message between non-adjacent nodes.
	g := must(topology.Harary(4, 9))
	// 0 and 4 are non-adjacent in H_{4,9} (offsets 1, 2 around the ring).
	if g.HasEdge(0, 4) {
		t.Fatal("test premise: 0 and 4 must be non-adjacent")
	}
	for relay := 1; relay < 9; relay++ {
		if relay == 4 {
			continue
		}
		ch, err := transport.New(g, 1, 2, map[types.NodeID]transport.RelayCorruptor{
			types.NodeID(relay): transport.FlipTo(beta),
		})
		if err != nil {
			t.Fatal(err)
		}
		m, ok := ch.Deliver(types.Message{From: 0, To: 4, Value: alpha})
		if !ok || m.Value != alpha {
			t.Errorf("faulty relay %d corrupted the channel: got %v", relay, m.Value)
		}
	}
}

func TestDegradedChannelBeyondM(t *testing.T) {
	// With f = u = 2 colluding relays the channel may degrade to V_d but
	// must never deliver a forged value.
	g := must(topology.Harary(4, 9))
	seenDegraded := false
	for r1 := 1; r1 < 9; r1++ {
		for r2 := r1 + 1; r2 < 9; r2++ {
			if r1 == 4 || r2 == 4 {
				continue
			}
			ch, err := transport.New(g, 1, 2, map[types.NodeID]transport.RelayCorruptor{
				types.NodeID(r1): transport.FlipTo(beta),
				types.NodeID(r2): transport.FlipTo(beta),
			})
			if err != nil {
				t.Fatal(err)
			}
			m, ok := ch.Deliver(types.Message{From: 0, To: 4, Value: alpha})
			if !ok {
				t.Fatal("routed message dropped")
			}
			if m.Value == beta {
				t.Fatalf("relays %d,%d forged a delivery", r1, r2)
			}
			if m.Value == types.Default {
				seenDegraded = true
			}
		}
	}
	if !seenDegraded {
		t.Log("no relay pair degraded the 0→4 channel (acceptable: depends on path layout)")
	}
}

func TestDropAllDegrades(t *testing.T) {
	g := must(topology.Harary(4, 9))
	// All relays on every path drop: u+? — use 2 faulty relays (f ≤ u).
	ch, err := transport.New(g, 1, 2, map[types.NodeID]transport.RelayCorruptor{
		2: transport.DropAll(),
		8: transport.DropAll(),
	})
	if err != nil {
		t.Fatal(err)
	}
	m, ok := ch.Deliver(types.Message{From: 0, To: 4, Value: alpha})
	if !ok {
		t.Fatal("message dropped entirely")
	}
	if m.Value != alpha && m.Value != types.Default {
		t.Errorf("dropping relays produced forged value %v", m.Value)
	}
}

// TestAgreementOverSparseGraph is the Theorem 3 sufficiency integration
// test: m/u-degradable agreement succeeds over a graph with connectivity
// exactly m+u+1, with both faulty protocol nodes and faulty relays.
func TestAgreementOverSparseGraph(t *testing.T) {
	// N = 9 nodes, m = 1, u = 2 (N > 2m+u ✓), κ(H_{4,9}) = 4 = m+u+1.
	g := must(topology.Harary(4, 9))
	p := core.Params{N: 9, M: 1, U: 2}

	for _, tc := range []struct {
		name    string
		faulty  []types.NodeID
		senderF bool
	}{
		{"one faulty relay node", []types.NodeID{5}, false},
		{"two faulty nodes", []types.NodeID{3, 7}, false},
		{"faulty sender plus relay", []types.NodeID{0, 5}, true},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			// Faulty nodes corrupt both as protocol participants and as
			// relays.
			corrupt := make(map[types.NodeID]transport.RelayCorruptor, len(tc.faulty))
			strategies := make(map[types.NodeID]adversary.Strategy, len(tc.faulty))
			for _, id := range tc.faulty {
				corrupt[id] = transport.FlipTo(beta)
				strategies[id] = adversary.Lie{Value: beta}
			}
			ch, err := transport.New(g, p.M, p.U, corrupt)
			if err != nil {
				t.Fatal(err)
			}
			in := runner.Instance{
				Protocol:    p,
				SenderValue: alpha,
				Strategies:  strategies,
				Channel:     ch,
			}
			_, verdict, err := in.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !verdict.OK {
				t.Errorf("verdict: %s violated: %s", verdict.Condition, verdict.Reason)
			}
			if !verdict.Graceful {
				t.Errorf("graceful degradation failed: %v", verdict.Classes)
			}
		})
	}
}

// TestAgreementOverSparseGraphBattery runs the full adversary battery over
// the sparse topology for f ≤ u.
func TestAgreementOverSparseGraphBattery(t *testing.T) {
	if testing.Short() {
		t.Skip("battery over sparse graph skipped in -short mode")
	}
	g := must(topology.Harary(4, 9))
	p := core.Params{N: 9, M: 1, U: 2}
	all := make([]types.NodeID, p.N)
	for i := range all {
		all[i] = types.NodeID(i)
	}
	for f := 1; f <= p.U; f++ {
		types.Subsets(all, f, func(faulty types.NodeSet) bool {
			honest := make([]types.NodeID, 0, p.N)
			for _, id := range all {
				if !faulty.Contains(id) {
					honest = append(honest, id)
				}
			}
			ctx := adversary.Context{N: p.N, Sender: 0, SenderValue: alpha, Alt: beta, Honest: honest}
			corrupt := make(map[types.NodeID]transport.RelayCorruptor)
			for _, id := range faulty.IDs() {
				corrupt[id] = transport.FlipTo(beta)
			}
			for _, sc := range adversary.Battery() {
				ch, err := transport.New(g, p.M, p.U, corrupt)
				if err != nil {
					t.Fatal(err)
				}
				in := runner.Instance{
					Protocol:    p,
					SenderValue: alpha,
					Strategies:  sc.Build(faulty.IDs(), 7, ctx),
					Channel:     ch,
				}
				_, verdict, err := in.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !verdict.OK {
					t.Errorf("faulty=%v scenario=%s: %s: %s", faulty, sc.Name, verdict.Condition, verdict.Reason)
				}
			}
			return !t.Failed()
		})
		if t.Failed() {
			return
		}
	}
}

func TestChannelImplementsInterface(t *testing.T) {
	var _ netsim.Channel = (*transport.Channel)(nil)
	_ = fmt.Sprintf
}
