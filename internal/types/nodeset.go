package types

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// NodeSet is a compact set of node IDs, limited to IDs 0..63. Systems in this
// module are small (the protocols are exponential in m), so a 64-bit mask is
// ample and makes exhaustive enumeration of fault sets cheap.
type NodeSet uint64

// MaxNodeSetID is the largest NodeID representable in a NodeSet.
const MaxNodeSetID = 63

// NewNodeSet builds a set from the given IDs.
func NewNodeSet(ids ...NodeID) NodeSet {
	var s NodeSet
	for _, id := range ids {
		s = s.Add(id)
	}
	return s
}

// Add returns the set with id inserted.
func (s NodeSet) Add(id NodeID) NodeSet {
	if id < 0 || id > MaxNodeSetID {
		panic(fmt.Sprintf("types: NodeID %d out of NodeSet range", int(id)))
	}
	return s | 1<<uint(id)
}

// Remove returns the set with id removed.
func (s NodeSet) Remove(id NodeID) NodeSet {
	if id < 0 || id > MaxNodeSetID {
		return s
	}
	return s &^ (1 << uint(id))
}

// Contains reports whether id is in the set.
func (s NodeSet) Contains(id NodeID) bool {
	if id < 0 || id > MaxNodeSetID {
		return false
	}
	return s&(1<<uint(id)) != 0
}

// Len returns the number of members.
func (s NodeSet) Len() int { return bits.OnesCount64(uint64(s)) }

// Empty reports whether the set has no members.
func (s NodeSet) Empty() bool { return s == 0 }

// Union returns s ∪ t.
func (s NodeSet) Union(t NodeSet) NodeSet { return s | t }

// Intersect returns s ∩ t.
func (s NodeSet) Intersect(t NodeSet) NodeSet { return s & t }

// Minus returns s \ t.
func (s NodeSet) Minus(t NodeSet) NodeSet { return s &^ t }

// IDs returns the members in ascending order.
func (s NodeSet) IDs() []NodeID {
	ids := make([]NodeID, 0, s.Len())
	for v := uint64(s); v != 0; {
		b := bits.TrailingZeros64(v)
		ids = append(ids, NodeID(b))
		v &^= 1 << uint(b)
	}
	return ids
}

// String renders the set as "{1,3,5}".
func (s NodeSet) String() string {
	ids := s.IDs()
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%d", int(id))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Subsets calls fn for every subset of size k drawn from the IDs in universe.
// Enumeration is in deterministic (lexicographic) order. If fn returns false,
// enumeration stops early.
func Subsets(universe []NodeID, k int, fn func(NodeSet) bool) {
	if k < 0 || k > len(universe) {
		return
	}
	u := append([]NodeID(nil), universe...)
	sort.Slice(u, func(i, j int) bool { return u[i] < u[j] })
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		var s NodeSet
		for _, i := range idx {
			s = s.Add(u[i])
		}
		if !fn(s) {
			return
		}
		// Advance combination indices.
		i := k - 1
		for i >= 0 && idx[i] == len(u)-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
