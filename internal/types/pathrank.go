package types

import (
	"fmt"
	"math/bits"
)

// PathRanker maps the valid relay paths of one EIG universe — a fixed
// sender followed by 0..depth-1 distinct non-sender relayers — to dense
// contiguous integers, and back. It is the indexing core of the flat
// (hash-free) EIG storage engine: because the universe is exactly the set
// of k-permutations of the n−1 non-sender nodes, a perfect ranking exists
// and every Set/Get in the tree becomes a pair of array operations.
//
// Paths of length ℓ occupy indices [Offset(ℓ), Offset(ℓ)+Count(ℓ)) of one
// flat space, ordered lexicographically by node ID within a level, so
// Count(ℓ) = P(n−1, ℓ−1) (the falling factorial). Ranking is mixed-radix
// lexicographic: writing the relayers of a length-ℓ path as compact
// indices c_0..c_{k−1} (k = ℓ−1, sender excluded from the alphabet), the
// level-local rank is
//
//	rank = Σ_i s_i · P(m−1−i, k−1−i)     m = n−1
//
// where s_i is the number of still-unused alphabet values below c_i. The
// radix weights are precomputed at construction, so ranking a path is a
// single pass over its elements.
//
// A useful consequence of lexicographic ranking: the children σ·j of a
// length-ℓ path with level rank r occupy the contiguous level-(ℓ+1) rank
// block [r·(n−ℓ), (r+1)·(n−ℓ)), in ascending node-ID order of j. The flat
// tree's bottom-up resolution sweep is built on exactly this property.
type PathRanker struct {
	n      int
	depth  int
	sender NodeID
	// fall[k][i] = P(m−1−i, k−1−i): the number of ways to fill the suffix
	// positions i+1..k−1 of a k-relayer path from the remaining alphabet.
	// fall[k][k−1] = 1; fall has entries for k = 1..depth−1.
	fall [][]int
	// offset[ℓ] is the flat index of the first length-ℓ path; the extra
	// entry offset[depth+1] is the total universe size. count[ℓ] =
	// offset[ℓ+1] − offset[ℓ] is kept separately for O(1) reads.
	offset []int
	count  []int
}

// maxRankerNodes caps the alphabet so unranking can track used values in a
// fixed four-word bitmask (and so flat storage stays in byte-sized ID
// territory). Larger systems use the hash-map tree engine instead.
const maxRankerNodes = 255

// maxRankerEntries caps the universe size so index arithmetic can never
// overflow and a dense allocation stays sane. The EIG protocols are
// exponential in depth, so any universe near this bound is unrunnable
// anyway; the cap exists to make the fallback decision explicit.
const maxRankerEntries = 1 << 40

// NewPathRanker builds the ranking tables for a system of n nodes, paths
// up to the given depth, rooted at sender. It fails when the parameters
// are out of range or the universe exceeds maxRankerEntries — callers
// treat that as "use the map engine".
func NewPathRanker(n, depth int, sender NodeID) (*PathRanker, error) {
	if n < 2 || n > maxRankerNodes {
		return nil, fmt.Errorf("types: ranker needs 2 ≤ n ≤ %d, got %d", maxRankerNodes, n)
	}
	if depth < 1 || depth > n-1 {
		return nil, fmt.Errorf("types: ranker depth %d out of range [1, %d]", depth, n-1)
	}
	if sender < 0 || int(sender) >= n {
		return nil, fmt.Errorf("types: ranker sender %d out of range", int(sender))
	}
	m := n - 1
	r := &PathRanker{
		n:      n,
		depth:  depth,
		sender: sender,
		fall:   make([][]int, depth),
		offset: make([]int, depth+2),
		count:  make([]int, depth+1),
	}
	for k := 1; k < depth; k++ {
		r.fall[k] = make([]int, k)
		r.fall[k][k-1] = 1
		for i := k - 2; i >= 0; i-- {
			r.fall[k][i] = r.fall[k][i+1] * (m - 1 - i)
		}
	}
	levelCount := 1 // Count(1): the bare sender
	for l := 1; l <= depth; l++ {
		r.count[l] = levelCount
		r.offset[l+1] = r.offset[l] + levelCount
		if r.offset[l+1] > maxRankerEntries {
			return nil, fmt.Errorf("types: ranker universe for n=%d depth=%d exceeds %d entries",
				n, depth, maxRankerEntries)
		}
		levelCount *= m - l + 1 // Count(l+1) = Count(l)·(m−ℓ+1)
	}
	return r, nil
}

// N returns the system size.
func (r *PathRanker) N() int { return r.n }

// Depth returns the maximum path length.
func (r *PathRanker) Depth() int { return r.depth }

// Sender returns the fixed path root.
func (r *PathRanker) Sender() NodeID { return r.sender }

// Count returns the number of valid paths of exactly the given length, or
// 0 outside [1, depth].
func (r *PathRanker) Count(length int) int {
	if length < 1 || length > r.depth {
		return 0
	}
	return r.count[length]
}

// Offset returns the flat index of the first path of the given length.
func (r *PathRanker) Offset(length int) int {
	if length < 1 || length > r.depth {
		return 0
	}
	return r.offset[length]
}

// Total returns the universe size: the number of valid paths of all
// lengths, and therefore the length of a dense value array.
func (r *PathRanker) Total() int { return r.offset[r.depth+1] }

// Children returns the number of one-node extensions every length-ℓ path
// has: n−ℓ. The children of the path with level rank r are exactly the
// level-(ℓ+1) ranks r·(n−ℓ)+s for s in [0, n−ℓ), ascending in the ID of
// the appended node.
func (r *PathRanker) Children(length int) int {
	if length < 1 || length >= r.depth {
		return 0
	}
	return r.n - length
}

// Index ranks p into the flat universe. ok is false when p is not a valid
// path of this universe (wrong root, out-of-range or repeated node, bad
// length); the validation is a by-product of ranking and costs nothing
// extra, so callers need no separate ValidPath check.
func (r *PathRanker) Index(p Path) (idx int, ok bool) {
	l := len(p)
	if l < 1 || l > r.depth || p[0] != r.sender {
		return 0, false
	}
	k := l - 1
	rank := 0
	for i := 1; i <= k; i++ {
		id := p[i]
		if id < 0 || int(id) >= r.n || id == r.sender {
			return 0, false
		}
		// Compact index: the alphabet is the non-sender nodes in ID order.
		s := int(id)
		if id > r.sender {
			s--
		}
		// s_i = c_i minus the number of already-used smaller values; the
		// compact mapping is monotone, so raw-ID comparisons suffice.
		for j := 1; j < i; j++ {
			if p[j] == id {
				return 0, false
			}
			if p[j] < id {
				s--
			}
		}
		rank += s * r.fall[k][i-1]
	}
	return r.offset[l] + rank, true
}

// Unrank reconstructs the path of the given length and level-local rank
// (in [0, Count(length))), appending into buf[:0] to avoid allocation. It
// is the inverse of Index: Index(Unrank(ℓ, rank)) == Offset(ℓ)+rank.
func (r *PathRanker) Unrank(length, rank int, buf Path) (Path, bool) {
	if length < 1 || length > r.depth || rank < 0 || rank >= r.count[length] {
		return nil, false
	}
	buf = append(buf[:0], r.sender)
	var used [4]uint64 // compact alphabet bitmap, m ≤ 254
	k := length - 1
	for i := 0; i < k; i++ {
		f := r.fall[k][i]
		q := rank / f
		rank %= f
		// The value at position i is the (q+1)-th smallest unused one.
		c := -1
		for w := 0; w < len(used) && c < 0; w++ {
			free := ^used[w]
			for free != 0 {
				b := bits.TrailingZeros64(free)
				if q == 0 {
					c = w*64 + b
					break
				}
				q--
				free &^= 1 << uint(b)
			}
		}
		used[c>>6] |= 1 << uint(c&63)
		id := NodeID(c)
		if id >= r.sender {
			id++
		}
		buf = append(buf, id)
	}
	return buf, true
}
