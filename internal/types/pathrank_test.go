package types

import (
	"testing"
)

func mustRanker(t *testing.T, n, depth int, sender NodeID) *PathRanker {
	t.Helper()
	r, err := NewPathRanker(n, depth, sender)
	if err != nil {
		t.Fatalf("NewPathRanker(%d, %d, %d): %v", n, depth, int(sender), err)
	}
	return r
}

func TestNewPathRankerValidation(t *testing.T) {
	for _, tt := range []struct {
		name     string
		n, depth int
		sender   NodeID
		wantErr  bool
	}{
		{"ok minimal", 2, 1, 0, false},
		{"ok typical", 7, 2, 0, false},
		{"too few nodes", 1, 1, 0, true},
		{"zero depth", 4, 0, 0, true},
		{"depth too large", 4, 4, 0, true},
		{"sender out of range", 4, 2, 4, true},
		{"sender negative", 4, 2, -1, true},
		{"n past byte range", 256, 2, 0, true},
	} {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewPathRanker(tt.n, tt.depth, tt.sender)
			if (err != nil) != tt.wantErr {
				t.Errorf("err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestPathRankerCounts(t *testing.T) {
	r := mustRanker(t, 7, 3, 0)
	// P(6, 0) = 1, P(6, 1) = 6, P(6, 2) = 30.
	for l, want := range map[int]int{1: 1, 2: 6, 3: 30, 0: 0, 4: 0} {
		if got := r.Count(l); got != want {
			t.Errorf("Count(%d) = %d, want %d", l, got, want)
		}
	}
	if got := r.Total(); got != 37 {
		t.Errorf("Total = %d, want 37", got)
	}
	if got := r.Offset(3); got != 7 {
		t.Errorf("Offset(3) = %d, want 7", got)
	}
	if got := r.Children(2); got != 5 {
		t.Errorf("Children(2) = %d, want 5 (n−ℓ)", got)
	}
}

// TestPathRankerBijective checks, for every small universe, that Index is
// a bijection onto [0, Total): every rank is hit exactly once, Unrank
// inverts Index, ranks are assigned in lexicographic path order, and the
// child-block contiguity the flat engine relies on holds.
func TestPathRankerBijective(t *testing.T) {
	for n := 2; n <= 6; n++ {
		for depth := 1; depth <= n-1; depth++ {
			for _, sender := range []NodeID{0, NodeID(n / 2), NodeID(n - 1)} {
				r := mustRanker(t, n, depth, sender)
				seen := make([]bool, r.Total())
				var walk func(p Path)
				walk = func(p Path) {
					idx, ok := r.Index(p)
					if !ok {
						t.Fatalf("n=%d d=%d s=%d: valid path %v not ranked", n, depth, int(sender), p)
					}
					// Lexicographic enumeration within a level must yield
					// consecutive ranks (the walk below appends IDs in
					// ascending order).
					if idx < 0 || idx >= r.Total() || seen[idx] {
						t.Fatalf("index %d for %v out of range or duplicated", idx, p)
					}
					seen[idx] = true
					// Unrank must invert.
					got, ok := r.Unrank(len(p), idx-r.Offset(len(p)), nil)
					if !ok || got.Compare(p) != 0 {
						t.Fatalf("Unrank(%d, %d) = %v (%v), want %v", len(p), idx-r.Offset(len(p)), got, ok, p)
					}
					// Child contiguity: the s-th child (ascending ID) of the
					// path with level rank q sits at level rank q·(n−ℓ)+s.
					if len(p) < depth {
						q := idx - r.Offset(len(p))
						s := 0
						for j := 0; j < n; j++ {
							id := NodeID(j)
							if p.Contains(id) {
								continue
							}
							child := append(p, id)
							cidx, ok := r.Index(child)
							if !ok {
								t.Fatalf("child %v not ranked", child)
							}
							wantRank := q*r.Children(len(p)) + s
							if cidx-r.Offset(len(p)+1) != wantRank {
								t.Fatalf("child %v: rank %d, want %d", child, cidx-r.Offset(len(p)+1), wantRank)
							}
							walk(child)
							s++
						}
					}
				}
				walk(Path{sender})
				for idx, ok := range seen {
					if !ok {
						t.Fatalf("n=%d d=%d s=%d: rank %d never produced", n, depth, int(sender), idx)
					}
				}
			}
		}
	}
}

func TestPathRankerRejects(t *testing.T) {
	r := mustRanker(t, 5, 3, 1)
	for _, bad := range []Path{
		{},            // empty
		{0},           // wrong root
		{1, 1},        // sender repeated
		{1, 2, 2},     // relayer repeated
		{1, 5},        // out of range
		{1, -1},       // negative
		{1, 0, 2, 3},  // too long
		{1, 2, 0, 22}, // out of range at the tail
	} {
		if _, ok := r.Index(bad); ok {
			t.Errorf("Index(%v) accepted an invalid path", bad)
		}
	}
	if _, ok := r.Unrank(2, 4, nil); ok {
		t.Error("Unrank past Count should fail")
	}
	if _, ok := r.Unrank(4, 0, nil); ok {
		t.Error("Unrank past depth should fail")
	}
}

// FuzzPathRankRoundTrip fuzzes rank/unrank inversion from both directions:
// any in-range (length, rank) pair must unrank to a path that ranks back
// to itself, and any byte-soup path must either be rejected or round-trip.
func FuzzPathRankRoundTrip(f *testing.F) {
	f.Add(7, 3, uint8(0), 2, 5, []byte{1, 2})
	f.Add(5, 4, uint8(4), 4, 0, []byte{0, 1, 2})
	f.Fuzz(func(t *testing.T, n, depth int, senderRaw uint8, length, rank int, rawPath []byte) {
		if n < 2 || n > 64 || depth < 1 || depth > n-1 {
			return
		}
		sender := NodeID(int(senderRaw) % n)
		r, err := NewPathRanker(n, depth, sender)
		if err != nil {
			return // oversized universe: fallback territory, nothing to check
		}
		if length >= 1 && length <= depth && rank >= 0 && rank < r.Count(length) {
			p, ok := r.Unrank(length, rank, nil)
			if !ok {
				t.Fatalf("Unrank(%d, %d) failed in range", length, rank)
			}
			idx, ok := r.Index(p)
			if !ok || idx != r.Offset(length)+rank {
				t.Fatalf("Index(Unrank(%d, %d)) = %d (%v), want %d", length, rank, idx, ok, r.Offset(length)+rank)
			}
		}
		if len(rawPath) > 0 {
			p := make(Path, 0, len(rawPath)+1)
			p = append(p, sender)
			for _, b := range rawPath {
				p = append(p, NodeID(int(b)%(n+2)-1)) // include some invalid IDs
			}
			if idx, ok := r.Index(p); ok {
				q, ok2 := r.Unrank(len(p), idx-r.Offset(len(p)), nil)
				if !ok2 || q.Compare(p) != 0 {
					t.Fatalf("Unrank(Index(%v)) = %v (%v)", p, q, ok2)
				}
			}
		}
	})
}
