// Package types defines the fundamental vocabulary shared by every other
// package in this module: node identifiers, agreement values (including the
// paper's distinguished default value V_d), relay paths, and messages.
//
// The types are deliberately small and copyable; protocol packages build on
// them without importing each other.
package types

import (
	"fmt"
	"math"
	"slices"
	"strings"
)

// NodeID identifies a node in the system. By convention node 0 is the sender
// unless a protocol says otherwise. IDs are dense: a system of N nodes uses
// IDs 0..N-1.
type NodeID int

// Value is an agreement value. The paper requires a default value V_d that is
// "distinguishable from all other values"; Default plays that role and must
// never be used as an application value.
type Value int64

// Default is V_d, the paper's distinguished default value. VOTE returns it on
// insufficient support or ties, and degraded agreement allows one of the two
// decision classes to hold it.
const Default Value = math.MinInt64

// IsDefault reports whether v is the distinguished default value V_d.
func (v Value) IsDefault() bool { return v == Default }

// String renders a value, printing the default distinctly.
func (v Value) String() string {
	if v == Default {
		return "V_d"
	}
	return fmt.Sprintf("%d", int64(v))
}

// Path is a relay chain: Path[0] is the originating sender and each
// subsequent element is the node that relayed the value. Paths never repeat a
// node. A Path is the label of one node in an EIG tree.
type Path []NodeID

// Contains reports whether id appears in p.
func (p Path) Contains(id NodeID) bool {
	for _, n := range p {
		if n == id {
			return true
		}
	}
	return false
}

// Append returns a new path with id appended; p is not modified.
func (p Path) Append(id NodeID) Path {
	q := make(Path, len(p)+1)
	copy(q, p)
	q[len(p)] = id
	return q
}

// Clone returns an independent copy of p.
func (p Path) Clone() Path {
	q := make(Path, len(p))
	copy(q, p)
	return q
}

// Last returns the final node of the path. It panics on an empty path, which
// is always a programming error.
func (p Path) Last() NodeID {
	if len(p) == 0 {
		panic("types: Last on empty path")
	}
	return p[len(p)-1]
}

// Valid reports whether the path has no repeated nodes and all IDs are in
// [0, n). The common case (all IDs ≤ MaxNodeSetID) runs allocation-free on
// a bitmask; larger systems fall back to a map.
func (p Path) Valid(n int) bool {
	if n <= MaxNodeSetID+1 {
		var seen NodeSet
		for _, id := range p {
			if id < 0 || int(id) >= n || seen.Contains(id) {
				return false
			}
			seen = seen.Add(id)
		}
		return true
	}
	seen := make(map[NodeID]bool, len(p))
	for _, id := range p {
		if id < 0 || int(id) >= n || seen[id] {
			return false
		}
		seen[id] = true
	}
	return true
}

// Key returns a compact string encoding of the path, usable as a map key.
// Distinct paths always yield distinct keys. The encoding is binary (one
// byte per ID below 255, an escape plus fixed width above), chosen so that
// the hot protocol loops never touch fmt; use String for display.
func (p Path) Key() string {
	if len(p) == 0 {
		return ""
	}
	buf := make([]byte, 0, len(p))
	for _, id := range p {
		buf = appendKeyID(buf, id)
	}
	return string(buf)
}

// appendKeyID appends the key encoding of one ID: a single byte for IDs in
// [0, 255), or 0xFF followed by 8 big-endian bytes for anything else.
func appendKeyID(buf []byte, id NodeID) []byte {
	if id >= 0 && id < 0xFF {
		return append(buf, byte(id))
	}
	v := uint64(int64(id))
	return append(buf, 0xFF,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// Compare orders paths element-wise numerically, shorter prefixes first.
// It agrees with the lexicographic order of Key for in-range IDs and is
// allocation-free, so engines can sort deliveries without building keys.
func (p Path) Compare(q Path) int {
	for i := 0; i < len(p) && i < len(q); i++ {
		if p[i] != q[i] {
			if p[i] < q[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(p) < len(q):
		return -1
	case len(p) > len(q):
		return 1
	default:
		return 0
	}
}

// String renders the path as "s→a→b".
func (p Path) String() string {
	if len(p) == 0 {
		return "ε"
	}
	parts := make([]string, len(p))
	for i, id := range p {
		parts[i] = fmt.Sprintf("%d", int(id))
	}
	return strings.Join(parts, "→")
}

// Message is one protocol message. For relay (EIG-style) protocols, Path
// labels the claim being relayed: a message (Path=σ·j, From=j) asserts
// "j says that the value along σ is Value".
type Message struct {
	From  NodeID
	To    NodeID
	Round int
	Path  Path
	Value Value
}

// String renders the message for traces.
func (m Message) String() string {
	return fmt.Sprintf("r%d %d→%d [%s]=%s", m.Round, int(m.From), int(m.To), m.Path, m.Value)
}

// SortMessages orders messages deterministically (by From, then Path key,
// then To). Engines sort inboxes so runs are reproducible. slices.SortFunc
// with a package-level comparator keeps the sort allocation-free, which the
// serving hot loop's zero-alloc guarantee depends on.
func SortMessages(ms []Message) {
	slices.SortFunc(ms, compareMessages)
}

func compareMessages(a, b Message) int {
	if a.From != b.From {
		if a.From < b.From {
			return -1
		}
		return 1
	}
	if c := a.Path.Compare(b.Path); c != 0 {
		return c
	}
	switch {
	case a.To < b.To:
		return -1
	case a.To > b.To:
		return 1
	default:
		return 0
	}
}
