package types

import (
	"testing"
	"testing/quick"
)

func TestValueString(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		want string
	}{
		{"default", Default, "V_d"},
		{"zero", 0, "0"},
		{"positive", 42, "42"},
		{"negative", -7, "-7"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.String(); got != tt.want {
				t.Errorf("Value(%d).String() = %q, want %q", int64(tt.v), got, tt.want)
			}
		})
	}
}

func TestIsDefault(t *testing.T) {
	if !Default.IsDefault() {
		t.Error("Default.IsDefault() = false")
	}
	if Value(0).IsDefault() {
		t.Error("Value(0).IsDefault() = true")
	}
	if Value(-1).IsDefault() {
		t.Error("Value(-1).IsDefault() = true")
	}
}

func TestPathContains(t *testing.T) {
	p := Path{0, 2, 5}
	for _, id := range []NodeID{0, 2, 5} {
		if !p.Contains(id) {
			t.Errorf("Path %v should contain %d", p, id)
		}
	}
	for _, id := range []NodeID{1, 3, 4, 6} {
		if p.Contains(id) {
			t.Errorf("Path %v should not contain %d", p, id)
		}
	}
	if (Path{}).Contains(0) {
		t.Error("empty path should contain nothing")
	}
}

func TestPathAppendDoesNotAlias(t *testing.T) {
	p := make(Path, 1, 4) // spare capacity to catch aliasing
	p[0] = 0
	q := p.Append(1)
	r := p.Append(2)
	if q.Key() != (Path{0, 1}).Key() || r.Key() != (Path{0, 2}).Key() {
		t.Fatalf("Append aliasing: q=%s r=%s", q, r)
	}
	if len(p) != 1 {
		t.Fatalf("Append mutated receiver: %v", p)
	}
}

func TestPathLast(t *testing.T) {
	if got := (Path{3, 1, 4}).Last(); got != 4 {
		t.Errorf("Last = %d, want 4", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Last on empty path should panic")
		}
	}()
	_ = Path{}.Last()
}

func TestPathValid(t *testing.T) {
	tests := []struct {
		name string
		p    Path
		n    int
		want bool
	}{
		{"empty", Path{}, 4, true},
		{"simple", Path{0, 1, 2}, 4, true},
		{"repeat", Path{0, 1, 0}, 4, false},
		{"out of range high", Path{0, 4}, 4, false},
		{"out of range negative", Path{-1}, 4, false},
		{"boundary", Path{3}, 4, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Valid(tt.n); got != tt.want {
				t.Errorf("Path(%v).Valid(%d) = %v, want %v", tt.p, tt.n, got, tt.want)
			}
		})
	}
}

func TestPathKeyInjective(t *testing.T) {
	// Distinct paths must have distinct keys; e.g. [1,12] vs [11,2].
	a := Path{1, 12}
	b := Path{11, 2}
	if a.Key() == b.Key() {
		t.Errorf("key collision: %v and %v both map to %q", a, b, a.Key())
	}
}

func TestPathString(t *testing.T) {
	if got := (Path{0, 1}).String(); got != "0→1" {
		t.Errorf("String = %q", got)
	}
	if got := (Path{}).String(); got != "ε" {
		t.Errorf("empty String = %q", got)
	}
}

func TestSortMessagesDeterministic(t *testing.T) {
	ms := []Message{
		{From: 2, To: 1, Path: Path{0, 2}},
		{From: 1, To: 3, Path: Path{0, 1}},
		{From: 1, To: 2, Path: Path{0, 1}},
		{From: 1, To: 2, Path: Path{0}},
	}
	SortMessages(ms)
	if ms[0].From != 1 || ms[0].Path.Key() != (Path{0}).Key() {
		t.Errorf("unexpected first message: %v", ms[0])
	}
	if ms[len(ms)-1].From != 2 {
		t.Errorf("unexpected last message: %v", ms[len(ms)-1])
	}
	// Same From and Path sorted by To.
	if ms[1].To > ms[2].To {
		t.Errorf("messages not sorted by To: %v before %v", ms[1], ms[2])
	}
}

func TestNodeSetBasics(t *testing.T) {
	s := NewNodeSet(1, 3, 5)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for _, id := range []NodeID{1, 3, 5} {
		if !s.Contains(id) {
			t.Errorf("missing %d", id)
		}
	}
	if s.Contains(0) || s.Contains(2) || s.Contains(63) {
		t.Error("contains unexpected members")
	}
	if s.Contains(-1) || s.Contains(64) {
		t.Error("out-of-range Contains should be false")
	}
	s = s.Remove(3)
	if s.Contains(3) || s.Len() != 2 {
		t.Errorf("Remove failed: %v", s)
	}
	if got := s.String(); got != "{1,5}" {
		t.Errorf("String = %q", got)
	}
}

func TestNodeSetOps(t *testing.T) {
	a := NewNodeSet(0, 1, 2)
	b := NewNodeSet(2, 3)
	if got := a.Union(b); got.Len() != 4 {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Contains(2) || got.Len() != 1 {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); got.Contains(2) || got.Len() != 2 {
		t.Errorf("Minus = %v", got)
	}
	if !NodeSet(0).Empty() || a.Empty() {
		t.Error("Empty misbehaves")
	}
}

func TestNodeSetIDsSorted(t *testing.T) {
	s := NewNodeSet(9, 1, 40, 0)
	ids := s.IDs()
	want := []NodeID{0, 1, 9, 40}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
}

func TestNodeSetAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add(64) should panic")
		}
	}()
	NodeSet(0).Add(64)
}

func TestSubsetsCounts(t *testing.T) {
	universe := []NodeID{0, 1, 2, 3, 4}
	// C(5,2) = 10
	var count int
	seen := make(map[NodeSet]bool)
	Subsets(universe, 2, func(s NodeSet) bool {
		count++
		if s.Len() != 2 {
			t.Errorf("subset %v has size %d", s, s.Len())
		}
		if seen[s] {
			t.Errorf("duplicate subset %v", s)
		}
		seen[s] = true
		return true
	})
	if count != 10 {
		t.Errorf("enumerated %d subsets, want 10", count)
	}
}

func TestSubsetsEdgeCases(t *testing.T) {
	var count int
	Subsets([]NodeID{0, 1}, 0, func(s NodeSet) bool {
		count++
		if !s.Empty() {
			t.Errorf("size-0 subset %v not empty", s)
		}
		return true
	})
	if count != 1 {
		t.Errorf("size-0 enumeration count = %d, want 1", count)
	}
	Subsets([]NodeID{0, 1}, 3, func(NodeSet) bool {
		t.Error("k > len(universe) should enumerate nothing")
		return true
	})
	Subsets([]NodeID{0, 1}, -1, func(NodeSet) bool {
		t.Error("negative k should enumerate nothing")
		return true
	})
}

func TestSubsetsEarlyStop(t *testing.T) {
	var count int
	Subsets([]NodeID{0, 1, 2, 3}, 2, func(NodeSet) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop after %d calls, want 3", count)
	}
}

func TestNodeSetRoundTripQuick(t *testing.T) {
	f := func(raw uint64) bool {
		s := NodeSet(raw)
		rebuilt := NewNodeSet(s.IDs()...)
		return rebuilt == s && rebuilt.Len() == s.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubsetsLexOrder(t *testing.T) {
	// Unsorted universe must still enumerate deterministically.
	var first NodeSet
	Subsets([]NodeID{3, 0, 2}, 2, func(s NodeSet) bool {
		first = s
		return false
	})
	if want := NewNodeSet(0, 2); first != want {
		t.Errorf("first subset = %v, want %v", first, want)
	}
}
