package vote

import (
	"testing"

	"degradable/internal/types"
)

// FuzzVote checks the VOTE soundness invariants over arbitrary inputs: the
// winner (when not V_d) occurs at least threshold times and is the unique
// value doing so.
func FuzzVote(f *testing.F) {
	f.Add([]byte{1, 2, 2, 3}, uint8(2))
	f.Add([]byte{1, 2, 0, 3}, uint8(2))
	f.Add([]byte{1, 2, 2, 1}, uint8(2))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7}, uint8(8))
	f.Fuzz(func(t *testing.T, raw []byte, thRaw uint8) {
		vals := make([]types.Value, len(raw))
		for i, b := range raw {
			v := types.Value(b % 5)
			if b%7 == 0 {
				v = types.Default
			}
			vals[i] = v
		}
		th := int(thRaw%10) + 1
		got := Vote(th, vals)
		if got == types.Default {
			// Permissible always; but if a unique winner existed we must
			// not have missed it.
			var winners int
			for v, c := range tallyForTest(vals) {
				if c >= th && v != types.Default {
					winners++
				}
			}
			defCount := Count(types.Default, vals)
			if winners == 1 && defCount < th {
				t.Errorf("Vote(%d, %v) = V_d but a unique winner exists", th, vals)
			}
			return
		}
		if Count(got, vals) < th {
			t.Errorf("Vote(%d, %v) = %v with insufficient support", th, vals, got)
		}
		for v, c := range tallyForTest(vals) {
			if v != got && c >= th {
				t.Errorf("Vote(%d, %v) = %v but %v also reaches threshold", th, vals, got, v)
			}
		}
	})
}

func tallyForTest(vals []types.Value) map[types.Value]int {
	m := make(map[types.Value]int)
	for _, v := range vals {
		m[v]++
	}
	return m
}

// FuzzMajority checks that Majority never elects a value without strict
// majority support.
func FuzzMajority(f *testing.F) {
	f.Add([]byte{1, 1, 2})
	f.Add([]byte{})
	f.Add([]byte{3, 3, 3, 3})
	f.Fuzz(func(t *testing.T, raw []byte) {
		vals := make([]types.Value, len(raw))
		for i, b := range raw {
			vals[i] = types.Value(b % 4)
		}
		got := Majority(vals)
		if got != types.Default && 2*Count(got, vals) <= len(vals) {
			t.Errorf("Majority(%v) = %v without strict majority", vals, got)
		}
	})
}
