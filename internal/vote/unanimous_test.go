package vote

import (
	"testing"

	"degradable/internal/types"
)

func TestUnanimousSlots(t *testing.T) {
	cases := []struct {
		name   string
		vals   []types.Value
		want   types.Value
		wantOK bool
	}{
		{"empty", nil, types.Default, false},
		{"single", []types.Value{5}, 5, true},
		{"all equal", []types.Value{5, 5, 5, 5}, 5, true},
		{"all default", []types.Value{types.Default, types.Default}, types.Default, true},
		{"split", []types.Value{5, 6}, types.Default, false},
		{"late divergence", []types.Value{5, 5, 5, 6}, types.Default, false},
		{"default among values", []types.Value{5, types.Default, 5}, types.Default, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v, ok := UnanimousSlots(tc.vals)
			if v != tc.want || ok != tc.wantOK {
				t.Errorf("UnanimousSlots(%v) = (%s, %v), want (%s, %v)",
					tc.vals, v, ok, tc.want, tc.wantOK)
			}
			// The copying wrapper agrees: the unanimous value when ok, V_d
			// otherwise.
			if got := Unanimous(tc.vals); (tc.wantOK && got != tc.want) || (!tc.wantOK && got != types.Default) {
				t.Errorf("Unanimous(%v) = %s, inconsistent with UnanimousSlots", tc.vals, got)
			}
		})
	}
}

// TestUnanimousSlotsNoAlloc pins the reason the slot variant exists: it
// must inspect the raw slot array without copying it.
func TestUnanimousSlotsNoAlloc(t *testing.T) {
	vals := []types.Value{7, 7, 7, 7, 7, 7}
	if allocs := testing.AllocsPerRun(100, func() {
		if v, ok := UnanimousSlots(vals); !ok || v != 7 {
			t.Fatal("unexpected verdict")
		}
	}); allocs != 0 {
		t.Errorf("UnanimousSlots allocates %.1f times per call, want 0", allocs)
	}
}
