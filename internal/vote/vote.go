// Package vote implements the voting primitives of the paper.
//
// Section 4 defines VOTE(α, β) over β values w_1..w_β: the result is v if at
// least α of the values equal v, and the default value V_d otherwise. Ties —
// two distinct values both reaching the threshold — also yield V_d. Section 3
// additionally uses a k-out-of-n vote at the external entity (condition C.1)
// and classic majority voting for the OM baseline.
package vote

import (
	"fmt"

	"degradable/internal/types"
)

// Vote computes VOTE(threshold, len(vals)) as defined in §4 of the paper:
// it returns v when v is the unique value occurring at least threshold times
// among vals; on insufficient support, or when two or more distinct values
// reach the threshold (a tie), it returns types.Default.
//
// The default value itself may win the vote, in which case the result is
// simply types.Default.
func Vote(threshold int, vals []types.Value) types.Value {
	if threshold <= 0 {
		// VOTE(α, β) with α ≤ 0 is degenerate: every value trivially
		// reaches the threshold, which is a tie unless all values are
		// identical.
		threshold = 1
	}
	if len(vals) <= smallVote {
		return voteSmall(threshold, vals)
	}
	counts := tally(vals)
	winner := types.Default
	found := false
	for v, c := range counts {
		if c < threshold {
			continue
		}
		if found {
			return types.Default // tie
		}
		winner, found = v, true
	}
	if !found {
		return types.Default
	}
	return winner
}

// smallVote is the vector length up to which Vote counts in place instead
// of building a tally map. Protocol vote vectors have at most n−1 entries,
// so this covers every run the serving hot path sees without allocating.
const smallVote = 64

// voteSmall is Vote on short vectors: for each first occurrence, count its
// repeats directly. Quadratic, but allocation-free and faster than a map
// for the vector sizes the protocols produce.
func voteSmall(threshold int, vals []types.Value) types.Value {
	winner := types.Default
	found := false
	for i, v := range vals {
		prior := false
		for j := 0; j < i; j++ {
			if vals[j] == v {
				prior = true
				break
			}
		}
		if prior {
			continue // already counted at its first occurrence
		}
		c := 1
		for j := i + 1; j < len(vals); j++ {
			if vals[j] == v {
				c++
			}
		}
		if c >= threshold {
			if found {
				return types.Default // tie
			}
			winner, found = v, true
		}
	}
	if !found {
		return types.Default
	}
	return winner
}

// Majority returns the strict-majority value of vals (> len/2 occurrences),
// or types.Default when none exists. This is the "majority value among the
// values v_1...v_{n-1} if it exists, otherwise RETREAT" rule of Lamport's
// OM(m) algorithm.
func Majority(vals []types.Value) types.Value {
	if len(vals) == 0 {
		return types.Default
	}
	// Boyer–Moore majority vote: the only candidate that can hold a strict
	// majority survives the pairing pass; one counting pass verifies it.
	// Linear and allocation-free.
	cand, count := vals[0], 0
	for _, v := range vals {
		switch {
		case count == 0:
			cand, count = v, 1
		case v == cand:
			count++
		default:
			count--
		}
	}
	n := 0
	for _, v := range vals {
		if v == cand {
			n++
		}
	}
	if 2*n > len(vals) {
		return cand
	}
	return types.Default
}

// KOfN implements the external entity's (k)-out-of-(n) vote (condition C.1
// instantiates it as (m+u)-out-of-(2m+u)): the result is v if at least k of
// the n values equal v, and V_d otherwise. A tie (possible only when k ≤ n/2)
// yields V_d, consistent with Vote.
func KOfN(k int, vals []types.Value) (types.Value, error) {
	if k < 1 || k > len(vals) {
		return types.Default, fmt.Errorf("vote: k=%d out of range for %d values", k, len(vals))
	}
	return Vote(k, vals), nil
}

// Unanimous returns v if every value equals v, else types.Default. It is
// VOTE(β, β), the resolution rule of the m = 0 degradable algorithm.
func Unanimous(vals []types.Value) types.Value {
	if v, ok := UnanimousSlots(vals); ok {
		return v
	}
	return types.Default
}

// UnanimousSlots reports whether vals is non-empty and holds a single
// distinct value, and which. It is the allocation-free single-pass primitive
// behind Unanimous and the optimistic fast path: the serving runtime calls
// it directly on raw value-slot arrays (a flat EIG value segment, a round-1
// receipt vector with absences already mapped to types.Default) without
// building an intermediate copy or a tally. ok distinguishes an empty input
// (false) from a genuine unanimous types.Default (true).
func UnanimousSlots(vals []types.Value) (types.Value, bool) {
	if len(vals) == 0 {
		return types.Default, false
	}
	v := vals[0]
	for _, w := range vals[1:] {
		if w != v {
			return types.Default, false
		}
	}
	return v, true
}

// Count returns the number of occurrences of v in vals.
func Count(v types.Value, vals []types.Value) int {
	var c int
	for _, w := range vals {
		if w == v {
			c++
		}
	}
	return c
}

// Distinct returns the number of distinct values in vals.
func Distinct(vals []types.Value) int {
	return len(tally(vals))
}

func tally(vals []types.Value) map[types.Value]int {
	counts := make(map[types.Value]int, len(vals))
	for _, v := range vals {
		counts[v]++
	}
	return counts
}
