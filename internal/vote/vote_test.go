package vote

import (
	"math/rand"
	"testing"
	"testing/quick"

	"degradable/internal/types"
)

// vs builds a value slice tersely.
func vs(vals ...int64) []types.Value {
	out := make([]types.Value, len(vals))
	for i, v := range vals {
		out[i] = types.Value(v)
	}
	return out
}

func TestVotePaperExamples(t *testing.T) {
	// The three worked examples from §4 of the paper.
	tests := []struct {
		name      string
		threshold int
		vals      []types.Value
		want      types.Value
	}{
		{"VOTE(2,4) of 1,2,2,3 is 2", 2, vs(1, 2, 2, 3), 2},
		{"VOTE(2,4) of 1,2,0,3 is V_d", 2, vs(1, 2, 0, 3), types.Default},
		{"VOTE(2,4) of 1,2,2,1 is V_d (tie)", 2, vs(1, 2, 2, 1), types.Default},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Vote(tt.threshold, tt.vals); got != tt.want {
				t.Errorf("Vote(%d, %v) = %v, want %v", tt.threshold, tt.vals, got, tt.want)
			}
		})
	}
}

func TestVoteGeneral(t *testing.T) {
	tests := []struct {
		name      string
		threshold int
		vals      []types.Value
		want      types.Value
	}{
		{"empty", 1, nil, types.Default},
		{"single meets", 1, vs(7), 7},
		{"single misses", 2, vs(7), types.Default},
		{"default can win", 2, []types.Value{types.Default, types.Default, 3}, types.Default},
		{"exact threshold", 3, vs(5, 5, 5, 1), 5},
		{"below threshold", 4, vs(5, 5, 5, 1), types.Default},
		{"three-way tie", 1, vs(1, 2, 3), types.Default},
		{"unanimity", 4, vs(9, 9, 9, 9), 9},
		{"zero threshold normalized", 0, vs(4, 4), 4},
		{"negative threshold normalized", -3, vs(4, 4), 4},
		{"default ties with value", 2, []types.Value{types.Default, types.Default, 3, 3}, types.Default},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Vote(tt.threshold, tt.vals); got != tt.want {
				t.Errorf("Vote(%d, %v) = %v, want %v", tt.threshold, tt.vals, got, tt.want)
			}
		})
	}
}

func TestMajority(t *testing.T) {
	tests := []struct {
		name string
		vals []types.Value
		want types.Value
	}{
		{"empty", nil, types.Default},
		{"simple majority", vs(1, 1, 2), 1},
		{"no majority on even split", vs(1, 1, 2, 2), types.Default},
		{"plurality is not majority", vs(1, 1, 2, 3, 4), types.Default},
		{"all same", vs(6, 6, 6), 6},
		{"single", vs(3), 3},
		{"default majority", []types.Value{types.Default, types.Default, 1}, types.Default},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Majority(tt.vals); got != tt.want {
				t.Errorf("Majority(%v) = %v, want %v", tt.vals, got, tt.want)
			}
		})
	}
}

func TestKOfN(t *testing.T) {
	// C.1: (m+u)-out-of-(2m+u) vote; m=1, u=2 → 3-out-of-4.
	got, err := KOfN(3, vs(8, 8, 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got != 8 {
		t.Errorf("KOfN(3) = %v, want 8", got)
	}
	got, err = KOfN(3, vs(8, 8, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got != types.Default {
		t.Errorf("KOfN(3) under support = %v, want V_d", got)
	}
	if _, err := KOfN(0, vs(1)); err == nil {
		t.Error("KOfN(0) should error")
	}
	if _, err := KOfN(2, vs(1)); err == nil {
		t.Error("KOfN(k>n) should error")
	}
}

func TestUnanimous(t *testing.T) {
	if got := Unanimous(vs(4, 4, 4)); got != 4 {
		t.Errorf("Unanimous = %v", got)
	}
	if got := Unanimous(vs(4, 4, 5)); got != types.Default {
		t.Errorf("Unanimous on disagreement = %v", got)
	}
}

func TestCountAndDistinct(t *testing.T) {
	vals := vs(1, 2, 2, 3, 3, 3)
	if got := Count(3, vals); got != 3 {
		t.Errorf("Count(3) = %d", got)
	}
	if got := Count(9, vals); got != 0 {
		t.Errorf("Count(9) = %d", got)
	}
	if got := Distinct(vals); got != 3 {
		t.Errorf("Distinct = %d", got)
	}
	if got := Distinct(nil); got != 0 {
		t.Errorf("Distinct(nil) = %d", got)
	}
}

// Property: the result of Vote is either Default or a value that occurs at
// least threshold times, and no *other* value occurs threshold times.
func TestVoteSoundnessQuick(t *testing.T) {
	f := func(raw []uint8, thRaw uint8) bool {
		vals := make([]types.Value, len(raw))
		for i, r := range raw {
			vals[i] = types.Value(r % 4) // small domain to force collisions
		}
		th := int(thRaw%6) + 1
		got := Vote(th, vals)
		if got == types.Default {
			return true // always permissible per definition when no unique winner
		}
		if Count(got, vals) < th {
			return false
		}
		for v := types.Value(0); v < 4; v++ {
			if v != got && Count(v, vals) >= th {
				return false // tie should have produced Default
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Vote is insensitive to permutation of its inputs.
func TestVotePermutationInvariantQuick(t *testing.T) {
	f := func(raw []uint8, thRaw uint8, seed int64) bool {
		vals := make([]types.Value, len(raw))
		for i, r := range raw {
			vals[i] = types.Value(r % 3)
		}
		th := int(thRaw%5) + 1
		want := Vote(th, vals)
		rng := rand.New(rand.NewSource(seed))
		perm := append([]types.Value(nil), vals...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		return Vote(th, perm) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Majority(vals) != Default implies that value appears more than
// len/2 times; and majority is unique.
func TestMajoritySoundnessQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		vals := make([]types.Value, len(raw))
		for i, r := range raw {
			vals[i] = types.Value(r % 3)
		}
		got := Majority(vals)
		if got == types.Default {
			// Either no strict majority exists, or Default itself is the
			// majority — both mean returning Default is right. Verify no
			// non-default strict majority was missed.
			for v := types.Value(0); v < 3; v++ {
				if 2*Count(v, vals) > len(vals) {
					return false
				}
			}
			return true
		}
		return 2*Count(got, vals) > len(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: when a strict majority exists, Vote with any threshold at or
// below the majority count finds it or reports a tie — it never reports a
// different value.
func TestVoteNeverElectsMinorityQuick(t *testing.T) {
	f := func(raw []uint8, thRaw uint8) bool {
		vals := make([]types.Value, len(raw))
		for i, r := range raw {
			vals[i] = types.Value(r % 2)
		}
		maj := Majority(vals)
		if maj == types.Default {
			return true
		}
		th := int(thRaw%8) + 1
		got := Vote(th, vals)
		return got == maj || got == types.Default
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
