package wire

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"

	"degradable/internal/service"
)

// Result is one answered remote request.
type Result struct {
	// Status is the server's admission/execution classification.
	Status Status
	// Resp is populated when Status is StatusOK.
	Resp service.Response
	// Errmsg carries the server's error text for non-OK statuses.
	Errmsg string
	// Tag is the echoed routing tag and Tagged whether the response frame
	// carried one (responses to SendTagged requests do).
	Tag    Tag
	Tagged bool
}

// Client is a pipelining TCP client for the agreement service: many
// requests may be in flight on one connection; a background reader
// demultiplexes responses by ID. Safe for concurrent use.
type Client struct {
	conn net.Conn

	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer

	mu      sync.Mutex // guards pending, nextID, err
	pending map[uint64]chan Result
	nextID  uint64
	err     error // terminal read-loop error; set once

	readDone chan struct{}
}

// Dial connects to a serve daemon.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection and starts the reader.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:     conn,
		bw:       bufio.NewWriter(conn),
		pending:  make(map[uint64]chan Result),
		readDone: make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// readLoop demultiplexes response frames to their waiters until the
// connection fails or closes; every waiter is then failed with the cause.
func (c *Client) readLoop() {
	defer close(c.readDone)
	br := bufio.NewReader(c.conn)
	var err error
	var frame []byte // reused across frames; DecodeResponse copies what it keeps
	for {
		var payload []byte
		payload, err = ReadFrameInto(br, frame)
		if err != nil {
			break
		}
		frame = payload
		id, tag, tagged, st, resp, errmsg, derr := DecodeAnyResponse(payload)
		if derr != nil {
			err = derr
			break
		}
		c.mu.Lock()
		ch, ok := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ok {
			ch <- Result{Status: st, Resp: resp, Errmsg: errmsg, Tag: tag, Tagged: tagged}
		}
	}
	c.mu.Lock()
	c.err = fmt.Errorf("wire: connection lost: %w", err)
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch) // a closed channel reads the zero Result; Do maps it to c.err
	}
	c.mu.Unlock()
}

// Send submits one request and returns a channel carrying its Result. The
// channel is closed without a value if the connection dies first.
func (c *Client) Send(req service.Request) (<-chan Result, error) {
	return c.send(req, Tag{}, false)
}

// SendTagged is Send over a tagged frame: the request carries tag, and the
// server echoes it back on the response.
func (c *Client) SendTagged(req service.Request, tag Tag) (<-chan Result, error) {
	return c.send(req, tag, true)
}

func (c *Client) send(req service.Request, tag Tag, tagged bool) (<-chan Result, error) {
	ch := make(chan Result, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	var buf []byte
	var err error
	if tagged {
		buf, err = AppendTaggedRequest(nil, id, tag, req)
	} else {
		buf, err = AppendRequest(nil, id, req)
	}
	if err != nil {
		c.forget(id)
		return nil, err
	}
	c.wmu.Lock()
	_, werr := c.bw.Write(buf)
	if werr == nil {
		werr = c.bw.Flush()
	}
	c.wmu.Unlock()
	if werr != nil {
		c.forget(id)
		return nil, werr
	}
	return ch, nil
}

// forget abandons one in-flight ID after a local send failure.
func (c *Client) forget(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// Do submits one request and waits for its result.
func (c *Client) Do(ctx context.Context, req service.Request) (Result, error) {
	ch, err := c.Send(req)
	if err != nil {
		return Result{}, err
	}
	select {
	case r, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			return Result{}, err
		}
		return r, nil
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// Close severs the connection; in-flight requests fail.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.readDone
	return err
}
