package wire

import (
	"encoding/binary"
	"fmt"

	"degradable/internal/types"
)

// Cluster frame types. The cluster runtime (internal/cluster) reuses this
// package's length-prefixed framing for its node-to-node protocol: a Hello
// identifies the dialing node once per connection, and RoundBatch frames
// carry each round's messages, chunked to respect MaxFrame.
const (
	// TypeHello identifies the dialing node on a cluster connection. It is
	// sent exactly once, as the first frame after dialing; the accepting
	// node binds the connection to that identity and stamps every received
	// message's From field from it (§4 assumption c: receivers know the
	// sender, so a Byzantine node cannot forge another's identity by lying
	// inside a message body).
	TypeHello = 3
	// TypeRoundBatch carries the sender's messages addressed to this peer
	// for one round, possibly split across several chunks. The final chunk
	// is flagged; a flagged empty batch is the round-done marker, so a
	// peer with nothing to say is distinguishable from a silent (faulty or
	// partitioned) one — absence of the marker past the round deadline is
	// the detectable absence of §4 assumption (b).
	TypeRoundBatch = 4
)

// batchLast flags the chunk that completes a round's batch.
const batchLast = 1

// batchOverhead is the fixed per-chunk payload size: the 10-byte common
// header plus flags (1) and message count (2).
const batchOverhead = 10 + 1 + 2

// AppendHello appends a hello frame identifying the dialing node. It is
// AppendHelloInc at incarnation zero: the compact single-byte body every
// first-launch connection uses.
func AppendHello(buf []byte, node types.NodeID) ([]byte, error) {
	return AppendHelloInc(buf, node, 0)
}

// AppendHelloInc appends a hello carrying the dialing node's incarnation: 0
// for a process's first launch, k > 0 for its k-th restart after a crash. A
// nonzero incarnation is how a restarted node re-enters the mesh — the
// accepting peer rebinds its connection for that identity when (and only
// when) the incarnation is newer than the one currently bound, so a stale
// duplicate Hello can never hijack a live connection. Incarnation zero
// encodes as the 1-byte legacy body, so first-launch frames are unchanged.
func AppendHelloInc(buf []byte, node types.NodeID, inc int) ([]byte, error) {
	if node < 0 || node > 255 {
		return nil, fmt.Errorf("wire: hello node %d out of byte range", int(node))
	}
	if inc < 0 || inc > 255 {
		return nil, fmt.Errorf("wire: hello incarnation %d out of byte range", inc)
	}
	if inc == 0 {
		buf = appendHeader(buf, 10+1, TypeHello, 0)
		return append(buf, byte(node)), nil
	}
	buf = appendHeader(buf, 10+2, TypeHello, 0)
	return append(buf, byte(node), byte(inc)), nil
}

// DecodeHello decodes a hello payload, accepting both the 1-byte legacy
// body (incarnation zero) and the 2-byte restart form.
func DecodeHello(payload []byte) (types.NodeID, int, error) {
	_, b, err := header(payload, TypeHello)
	if err != nil {
		return 0, 0, err
	}
	switch len(b) {
	case 1:
		return types.NodeID(b[0]), 0, nil
	case 2:
		return types.NodeID(b[0]), int(b[1]), nil
	default:
		return 0, 0, fmt.Errorf("wire: hello body of %d bytes, want 1 or 2", len(b))
	}
}

// batchMessageSize returns the encoded size of one batch message:
// to (1) + path length (1) + path + value (8).
func batchMessageSize(m types.Message) int { return 2 + len(m.Path) + 8 }

// AppendRoundBatch appends the frames carrying msgs for the given round,
// chunked so that no frame exceeds MaxFrame. The last chunk is flagged;
// empty msgs yields a single flagged empty chunk — the round-done marker.
// Only To, Path, and Value are encoded: the receiver stamps From from the
// connection's hello-bound identity and Round from the frame's round tag,
// so neither can be forged in the message body.
func AppendRoundBatch(buf []byte, round int, msgs []types.Message) ([]byte, error) {
	if round < 0 {
		return nil, fmt.Errorf("wire: negative round %d", round)
	}
	for {
		// Fill one chunk up to the frame budget.
		chunk := 0
		body := batchOverhead
		for chunk < len(msgs) && chunk < 0xFFFF {
			m := msgs[chunk]
			if m.To < 0 || m.To > 255 {
				return nil, fmt.Errorf("wire: batch message to %d out of byte range", int(m.To))
			}
			if len(m.Path) > 255 {
				return nil, fmt.Errorf("wire: batch message path of %d hops", len(m.Path))
			}
			sz := batchMessageSize(m)
			if body+sz > MaxFrame {
				break
			}
			body += sz
			chunk++
		}
		if chunk == 0 && len(msgs) > 0 {
			return nil, fmt.Errorf("wire: batch message exceeds the %d-byte frame limit", MaxFrame)
		}
		last := chunk == len(msgs)
		buf = appendHeader(buf, body, TypeRoundBatch, uint64(round))
		if last {
			buf = append(buf, batchLast)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(chunk))
		for _, m := range msgs[:chunk] {
			buf = append(buf, byte(m.To), byte(len(m.Path)))
			for _, hop := range m.Path {
				if hop < 0 || hop > 255 {
					return nil, fmt.Errorf("wire: batch path hop %d out of byte range", int(hop))
				}
				buf = append(buf, byte(hop))
			}
			buf = binary.BigEndian.AppendUint64(buf, uint64(m.Value))
		}
		if last {
			return buf, nil
		}
		msgs = msgs[chunk:]
	}
}

// DecodeRoundBatch decodes one round-batch chunk. The returned messages
// carry To, Path, Value, and Round (from the frame's round tag); the caller
// stamps From with the connection's hello-bound identity. last reports
// whether this chunk completes the round's batch.
func DecodeRoundBatch(payload []byte) (round int, msgs []types.Message, last bool, err error) {
	id, b, err := header(payload, TypeRoundBatch)
	if err != nil {
		return 0, nil, false, err
	}
	if id > 1<<30 {
		return 0, nil, false, fmt.Errorf("wire: batch round %d out of range", id)
	}
	round = int(id)
	if len(b) < 3 {
		return 0, nil, false, fmt.Errorf("wire: truncated batch body (%d bytes)", len(b))
	}
	last = b[0]&batchLast != 0
	count := int(binary.BigEndian.Uint16(b[1:3]))
	b = b[3:]
	if count > 0 {
		msgs = make([]types.Message, 0, count)
	}
	for i := 0; i < count; i++ {
		if len(b) < 2 {
			return 0, nil, false, fmt.Errorf("wire: truncated batch message %d", i)
		}
		to, plen := types.NodeID(b[0]), int(b[1])
		b = b[2:]
		if len(b) < plen+8 {
			return 0, nil, false, fmt.Errorf("wire: truncated batch message %d", i)
		}
		var path []types.NodeID
		if plen > 0 {
			path = make([]types.NodeID, plen)
			for j := 0; j < plen; j++ {
				path[j] = types.NodeID(b[j])
			}
		}
		value := types.Value(binary.BigEndian.Uint64(b[plen : plen+8]))
		b = b[plen+8:]
		msgs = append(msgs, types.Message{To: to, Path: path, Value: value, Round: round})
	}
	if len(b) != 0 {
		return 0, nil, false, fmt.Errorf("wire: %d trailing batch bytes", len(b))
	}
	return round, msgs, last, nil
}
