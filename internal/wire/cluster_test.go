package wire

import (
	"bytes"
	"context"
	"net"
	"reflect"
	"testing"
	"time"

	"degradable/internal/service"
	"degradable/internal/types"
)

// TestHelloRoundTrip round-trips the cluster hello frame, in both the
// 1-byte first-launch form and the 2-byte restart form.
func TestHelloRoundTrip(t *testing.T) {
	buf, err := AppendHello(nil, 13)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	id, inc, err := DecodeHello(payload)
	if err != nil {
		t.Fatal(err)
	}
	if id != 13 || inc != 0 {
		t.Fatalf("hello node %d incarnation %d, want 13/0", int(id), inc)
	}
	if _, err := AppendHello(nil, 300); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

// TestHelloIncarnationRoundTrip checks a restarted node's hello carries its
// incarnation, and that incarnation zero keeps the legacy 1-byte body.
func TestHelloIncarnationRoundTrip(t *testing.T) {
	buf, err := AppendHelloInc(nil, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	id, inc, err := DecodeHello(payload)
	if err != nil {
		t.Fatal(err)
	}
	if id != 4 || inc != 2 {
		t.Fatalf("hello node %d incarnation %d, want 4/2", int(id), inc)
	}
	zero, err := AppendHelloInc(nil, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	legacy, _ := AppendHello(nil, 4)
	if !bytes.Equal(zero, legacy) {
		t.Fatal("incarnation-zero hello differs from the legacy encoding")
	}
	if _, err := AppendHelloInc(nil, 4, 256); err == nil {
		t.Fatal("out-of-range incarnation accepted")
	}
}

// TestRoundBatchRoundTrip round-trips a single-chunk batch, including the
// empty round-done marker.
func TestRoundBatchRoundTrip(t *testing.T) {
	msgs := []types.Message{
		{To: 2, Path: []types.NodeID{0}, Value: 42},
		{To: 3, Path: []types.NodeID{0, 1, 4}, Value: 7},
		{To: 1, Value: types.Default},
	}
	buf, err := AppendRoundBatch(nil, 3, msgs)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	round, got, last, err := DecodeRoundBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if round != 3 || !last {
		t.Fatalf("round=%d last=%v, want 3 true", round, last)
	}
	for i, m := range got {
		want := msgs[i]
		want.Round = 3
		if !reflect.DeepEqual(m, want) {
			t.Errorf("message %d: %+v, want %+v", i, m, want)
		}
	}

	// Empty batch: the round-done marker.
	buf, err = AppendRoundBatch(nil, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	payload, err = ReadFrame(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	round, got, last, err = DecodeRoundBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if round != 5 || !last || len(got) != 0 {
		t.Fatalf("marker: round=%d last=%v msgs=%d", round, last, len(got))
	}
}

// TestRoundBatchChunking drives a batch past MaxFrame and checks it splits
// into several frames whose concatenated decode recovers every message,
// with only the final chunk flagged.
func TestRoundBatchChunking(t *testing.T) {
	path := make([]types.NodeID, 60)
	for i := range path {
		path[i] = types.NodeID(i % 64)
	}
	var msgs []types.Message
	for i := 0; i < 2000; i++ { // 2000 × 70 bytes ≈ 137 KiB > MaxFrame
		msgs = append(msgs, types.Message{To: types.NodeID(i % 7), Path: path, Value: types.Value(i)})
	}
	buf, err := AppendRoundBatch(nil, 2, msgs)
	if err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(buf)
	var got []types.Message
	chunks, lastSeen := 0, false
	for {
		payload, err := ReadFrame(r)
		if err != nil {
			break
		}
		if lastSeen {
			t.Fatal("frame after the flagged last chunk")
		}
		round, part, last, err := DecodeRoundBatch(payload)
		if err != nil {
			t.Fatal(err)
		}
		if round != 2 {
			t.Fatalf("chunk round %d", round)
		}
		got = append(got, part...)
		chunks++
		lastSeen = last
	}
	if !lastSeen {
		t.Fatal("no chunk flagged last")
	}
	if chunks < 3 {
		t.Fatalf("%d chunks, want the batch split at least 3 ways", chunks)
	}
	if len(got) != len(msgs) {
		t.Fatalf("%d messages recovered, want %d", len(got), len(msgs))
	}
	for i, m := range got {
		if m.To != msgs[i].To || m.Value != msgs[i].Value || len(m.Path) != len(msgs[i].Path) {
			t.Fatalf("message %d mismatch: %+v", i, m)
		}
	}
}

// TestIdleTimeoutSeversStalledConn checks that a connection that goes quiet
// past the idle timeout is closed by the server, while a connection that
// keeps a normal request cadence is not.
func TestIdleTimeoutSeversStalledConn(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ln, service.New(service.Config{Shards: 1}))
	srv.SetTimeouts(Timeouts{Idle: 100 * time.Millisecond, Read: 100 * time.Millisecond, Write: time.Second})
	go srv.Serve()
	defer srv.Shutdown(context.Background())

	// A stalled connection: no frames at all. The server must sever it.
	stalled, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	stalled.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := stalled.Read(make([]byte, 1)); err == nil {
		t.Fatal("stalled connection still open past the idle timeout")
	}

	// A normally-paced client pipelines several requests with sub-idle
	// gaps and stays connected throughout.
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 4; i++ {
		res, err := c.Do(context.Background(), service.Request{N: 5, M: 1, U: 2, Value: 9})
		if err != nil {
			t.Fatalf("request %d on a healthy cadence: %v", i, err)
		}
		if res.Status != StatusOK {
			t.Fatalf("request %d: status %v", i, res.Status)
		}
		time.Sleep(30 * time.Millisecond)
	}
}

// TestReadTimeoutSeversSlowFrame checks that a frame started but never
// finished trips the read deadline.
func TestReadTimeoutSeversSlowFrame(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ln, service.New(service.Config{Shards: 1}))
	srv.SetTimeouts(Timeouts{Idle: time.Second, Read: 100 * time.Millisecond})
	go srv.Serve()
	defer srv.Shutdown(context.Background())

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send a length prefix promising 100 bytes, then stall.
	if _, err := conn.Write([]byte{0, 0, 0, 100}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("half-sent frame still open past the read timeout")
	}
}
