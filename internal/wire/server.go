package wire

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"time"

	"degradable/internal/service"
)

// shutdownGrace is how long a connection's reader keeps draining
// already-sent frames after Shutdown begins. Requests read within the
// grace window are executed and answered; afterwards the read deadline
// trips and the writer flushes what remains.
const shutdownGrace = 250 * time.Millisecond

// Timeouts configures per-connection deadlines. Zero values disable the
// corresponding deadline; the zero Timeouts preserves the historical
// behaviour (no deadline until shutdown's grace window).
type Timeouts struct {
	// Read bounds reading one frame's payload once its length prefix has
	// arrived: a peer that starts a frame must finish it promptly.
	Read time.Duration
	// Write bounds each response flush: a peer that stops draining its
	// socket is severed instead of wedging the writer goroutine.
	Write time.Duration
	// Idle bounds the quiet gap waiting for the next frame to begin; an
	// idle connection past it is closed.
	Idle time.Duration
}

// connDeadline serializes read-deadline updates on one connection so the
// per-frame idle/read deadlines never extend past an armed shutdown grace
// window (the watcher and the read loop race otherwise).
type connDeadline struct {
	mu    sync.Mutex
	conn  net.Conn
	grace bool
}

// arm sets a pre-frame deadline of d, unless shutdown grace is armed or d
// is zero.
func (c *connDeadline) arm(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.grace {
		return
	}
	c.conn.SetReadDeadline(time.Now().Add(d))
}

// shutdown arms the shutdown grace deadline; later arm calls are no-ops.
func (c *connDeadline) shutdown(grace time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.grace = true
	c.conn.SetReadDeadline(time.Now().Add(grace))
}

// pendingResp is one in-flight request on a connection, queued in arrival
// order so the writer answers FIFO (shards are FIFO too, so head-of-line
// waits are short).
type pendingResp struct {
	id uint64
	// tag is echoed back on the response when the request was tagged.
	tag    Tag
	tagged bool
	// slot carries the request's submission handle. When err is nil the
	// writer awaits the slot's outcome; either way the writer recycles the
	// slot once the response has been encoded.
	slot *service.Slot
	err  error
}

// Server exposes a service.Service over TCP: one reader and one writer
// goroutine per connection, length-prefixed frames.
type Server struct {
	svc      *service.Service
	ln       net.Listener
	timeouts Timeouts

	quit   chan struct{}
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	active sync.WaitGroup
	closed bool
}

// NewServer wraps an already-listening socket. The server owns both the
// listener and the service: Shutdown closes the two in order.
func NewServer(ln net.Listener, svc *service.Service) *Server {
	return &Server{
		svc:   svc,
		ln:    ln,
		quit:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
	}
}

// SetTimeouts configures the per-connection deadlines. It must be called
// before Serve; connections accepted afterwards use the new values.
func (s *Server) SetTimeouts(t Timeouts) { s.timeouts = t }

// Service returns the underlying runtime (for stats).
func (s *Server) Service() *service.Service { return s.svc }

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Serve accepts connections until Shutdown. It always returns a non-nil
// error; after Shutdown the error is net.ErrClosed.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.active.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// handle runs one connection: the reader parses frames and submits them,
// handing (id, completion) pairs to the writer in arrival order; the writer
// awaits each completion and answers. On server shutdown the reader stops
// admitting, the writer flushes every in-flight response, and only then
// does the connection close — no admitted request goes unanswered.
func (s *Server) handle(conn net.Conn) {
	defer s.active.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	cfg := s.svc.Config()
	timeouts := s.timeouts
	pend := make(chan pendingResp, cfg.Shards*cfg.QueueDepth+1)
	// free recycles submission slots between the writer (which releases a
	// slot once its response is encoded) and the reader (which prefers a
	// recycled slot over allocating). Steady state holds a handful of slots
	// — one per pipelined in-flight request — and the read-submit-respond
	// loop stops allocating entirely.
	free := make(chan *service.Slot, cfg.Shards*cfg.QueueDepth+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		var buf []byte
		bw := bufio.NewWriter(conn)
		flush := func() error {
			if timeouts.Write > 0 {
				conn.SetWriteDeadline(time.Now().Add(timeouts.Write))
			}
			return bw.Flush()
		}
		for p := range pend {
			var out service.Outcome
			if p.err != nil {
				out.Err = p.err
			} else {
				out = <-p.slot.Outcome()
			}
			buf = buf[:0]
			var err error
			st, errmsg := StatusOK, ""
			if out.Err != nil {
				st, errmsg = errStatus(out.Err), out.Err.Error()
			}
			if p.tagged {
				buf, err = AppendTaggedResponse(buf, p.id, p.tag, st, out.Resp, errmsg)
			} else {
				buf, err = AppendResponse(buf, p.id, st, out.Resp, errmsg)
			}
			// The response is encoded (out.Resp.Decisions aliases the slot's
			// task buffer, so encode-before-recycle is load-bearing); the slot
			// is free for the reader's next frame.
			select {
			case free <- p.slot:
			default:
			}
			if err != nil {
				continue // unencodable response; drop rather than desync the stream
			}
			if _, err := bw.Write(buf); err != nil {
				return
			}
			if len(pend) == 0 {
				if err := flush(); err != nil {
					return
				}
			}
		}
		flush()
	}()

	// On shutdown, bound the reader with a grace deadline rather than
	// severing it: frames the client already sent are still in the socket
	// buffer, and they must be read, admitted, and answered before the
	// connection closes — that is the no-unanswered-request contract. The
	// grace deadline wins over the per-frame idle/read deadlines: once
	// armed, they stop being refreshed.
	dl := &connDeadline{conn: conn}
	stopWatch := make(chan struct{})
	go func() {
		select {
		case <-s.quit:
			dl.shutdown(shutdownGrace)
		case <-stopWatch:
		}
	}()

	br := bufio.NewReader(conn)
	var frame []byte                 // reused across frames
	var fscratch []service.FaultSpec // reused fault decode buffer; Slot.Submit copies
	for {
		// Idle bounds the wait for the next frame to begin; once its length
		// prefix has arrived, Read bounds the payload.
		dl.arm(timeouts.Idle)
		n, grown, err := readPrefix(br, frame)
		if err != nil {
			frame = grown
			break // EOF, idle timeout, malformed prefix, or the shutdown deadline
		}
		dl.arm(timeouts.Read)
		payload, err := readPayload(br, grown, n)
		if err != nil {
			frame = grown
			break
		}
		frame = payload
		id, tag, tagged, req, fb, err := DecodeAnyRequestInto(payload, fscratch)
		fscratch = fb
		if err != nil {
			break // framing is lost; the deferred close severs the conn
		}
		var sl *service.Slot
		select {
		case sl = <-free:
		default:
			sl = s.svc.NewSlot()
		}
		err = sl.Submit(req)
		pend <- pendingResp{id: id, tag: tag, tagged: tagged, slot: sl, err: err}
	}
	close(stopWatch)
	close(pend)
	wg.Wait()
}

// errStatus maps an admission or execution error to its wire status.
func errStatus(err error) Status {
	switch {
	case errors.Is(err, service.ErrOverloaded):
		return StatusOverloaded
	case errors.Is(err, service.ErrClosed):
		return StatusClosed
	case errors.Is(err, service.ErrInvalid):
		return StatusInvalid
	case errors.Is(err, service.ErrQuota):
		return StatusQuota
	default:
		return StatusError
	}
}

// Shutdown gracefully stops the server: the listener closes, connections
// stop reading, every in-flight request is answered and flushed, and the
// service drains. ctx bounds the wait; on expiry remaining connections are
// severed (their in-flight responses may be lost).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	s.ln.Close()
	close(s.quit)

	finished := make(chan struct{})
	go func() {
		s.active.Wait()
		close(finished)
	}()
	var err error
	select {
	case <-finished:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-finished
	}
	s.svc.Close()
	return err
}
