package wire

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"degradable/internal/adversary"
	"degradable/internal/service"
	"degradable/internal/types"
)

// startServer boots a daemon on a loopback ephemeral port.
func startServer(t *testing.T, cfg service.Config) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ln, service.New(cfg))
	go srv.Serve()
	return srv, ln.Addr().String()
}

// TestEndToEnd drives a mixed fault/no-fault workload over real TCP and
// checks the responses against the protocol's guarantees.
func TestEndToEnd(t *testing.T) {
	srv, addr := startServer(t, service.Config{Shards: 2, SpecSample: 1})
	defer srv.Shutdown(context.Background())

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	for i := 0; i < 50; i++ {
		req := service.Request{N: 5, M: 1, U: 2, Value: types.Value(i)}
		if i%2 == 1 {
			req.Faults = []service.FaultSpec{{Node: 2, Kind: adversary.KindTwoFaced, Value: 999}}
		}
		res, err := c.Do(ctx, req)
		if err != nil {
			t.Fatalf("req %d: %v", i, err)
		}
		if res.Status != StatusOK {
			t.Fatalf("req %d: status %v (%s)", i, res.Status, res.Errmsg)
		}
		if len(res.Resp.Decisions) != 5 {
			t.Fatalf("req %d: %d decisions", i, len(res.Resp.Decisions))
		}
		// f ≤ m, so every fault-free node must decide the sender's value.
		for id := 0; id < 5; id++ {
			if i%2 == 1 && id == 2 {
				continue
			}
			if res.Resp.Decisions[id] != req.Value {
				t.Errorf("req %d node %d: %s, want %s", i, id, res.Resp.Decisions[id], req.Value)
			}
		}
		if !res.Resp.Checked || !res.Resp.OK {
			t.Errorf("req %d: Checked=%v OK=%v reason=%q", i, res.Resp.Checked, res.Resp.OK, res.Resp.Reason)
		}
	}
	// Invalid request gets a status, not a broken connection.
	res, err := c.Do(ctx, service.Request{N: 4, M: 1, U: 2, Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInvalid {
		t.Fatalf("invalid request: status %v", res.Status)
	}
	// The connection survives and keeps serving.
	res, err = c.Do(ctx, service.Request{N: 5, M: 1, U: 2, Value: 5})
	if err != nil || res.Status != StatusOK {
		t.Fatalf("post-invalid request: %v / %v", err, res.Status)
	}
	if st := srv.Service().Stats(); st.SpecViolations != 0 {
		t.Fatalf("spec violations: %d", st.SpecViolations)
	}
}

// TestPipelining issues many concurrent requests over one connection and
// checks each response is demultiplexed to its caller.
func TestPipelining(t *testing.T) {
	srv, addr := startServer(t, service.Config{Shards: 2, QueueDepth: 4096})
	defer srv.Shutdown(context.Background())
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const workers = 8
	const per = 50
	var wg sync.WaitGroup
	errs := make(chan error, workers*per)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := types.Value(w*10000 + i)
				res, err := c.Do(context.Background(), service.Request{N: 5, M: 1, U: 2, Value: v})
				if err != nil {
					errs <- err
					return
				}
				if res.Status == StatusOverloaded {
					continue
				}
				// Demux check: the decisions must carry OUR value, not
				// another worker's.
				if res.Status != StatusOK || res.Resp.Decisions[1] != v {
					errs <- errMismatch(w, i, res)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type mismatchError struct {
	w, i int
	res  Result
}

func errMismatch(w, i int, res Result) error { return &mismatchError{w, i, res} }
func (e *mismatchError) Error() string {
	return "worker mismatch: response did not match the request that sent it"
}

// TestGracefulShutdown checks the acceptance contract: a shutdown racing
// in-flight requests leaves none unanswered — every request either gets a
// full response or a clean connection error, never a silent drop.
func TestGracefulShutdown(t *testing.T) {
	srv, addr := startServer(t, service.Config{Shards: 2, QueueDepth: 1024})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Pipeline a burst without waiting, then shut down while they are in
	// flight.
	const inflight = 200
	chans := make([]<-chan Result, 0, inflight)
	for i := 0; i < inflight; i++ {
		ch, err := c.Send(service.Request{N: 7, M: 2, U: 2, Value: types.Value(i)})
		if err != nil {
			break // connection already severed by shutdown; fine
		}
		chans = append(chans, ch)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(context.Background()) }()

	answered, failed := 0, 0
	for _, ch := range chans {
		select {
		case r, ok := <-ch:
			if !ok {
				failed++ // connection died before this response: reported, not dropped
				continue
			}
			if r.Status == StatusOK || r.Status == StatusClosed || r.Status == StatusOverloaded {
				answered++
			} else {
				t.Fatalf("unexpected status %v: %s", r.Status, r.Errmsg)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("request neither answered nor failed after shutdown")
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if answered == 0 {
		t.Fatal("no request answered across a graceful shutdown")
	}
	t.Logf("answered=%d failed=%d", answered, failed)

	// After shutdown the port refuses connections.
	if _, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestShutdownAnswersAll is the strict variant: requests are sent and the
// responses awaited while a shutdown starts only after the sends complete.
// Every admitted request must receive a real response.
func TestShutdownAnswersAll(t *testing.T) {
	srv, addr := startServer(t, service.Config{Shards: 1, QueueDepth: 1024})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 100
	chans := make([]<-chan Result, n)
	for i := range chans {
		ch, err := c.Send(service.Request{N: 5, M: 1, U: 2, Value: types.Value(i)})
		if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		chans[i] = ch
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for i, ch := range chans {
		select {
		case r, ok := <-ch:
			if !ok {
				t.Fatalf("request %d: connection died before its response", i)
			}
			if r.Status != StatusOK {
				t.Fatalf("request %d: status %v (%s)", i, r.Status, r.Errmsg)
			}
			if r.Resp.Decisions[1] != types.Value(i) {
				t.Fatalf("request %d: wrong decisions", i)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("request %d unanswered", i)
		}
	}
}
