package wire

import (
	"bytes"
	"context"
	"net"
	"reflect"
	"testing"

	"degradable/internal/service"
	"degradable/internal/types"
)

func TestTaggedRequestRoundTrip(t *testing.T) {
	req := service.Request{N: 5, M: 1, U: 2, Value: 42}
	tag := Tag{Tenant: 7, Corr: 0xDEADBEEF}
	buf, err := AppendTaggedRequest(nil, 31, tag, req)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	id, gotTag, tagged, got, err := DecodeAnyRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if id != 31 || !tagged || gotTag != tag {
		t.Fatalf("id=%d tagged=%v tag=%+v", id, tagged, gotTag)
	}
	if got.Tenant != 7 {
		t.Fatalf("req.Tenant = %d, want 7", got.Tenant)
	}
	got.Tenant = 0 // the tag is the only place the tenant travels
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, req)
	}
	// Plain decoder must refuse the tagged type.
	if _, _, err := DecodeRequest(payload); err == nil {
		t.Fatal("DecodeRequest accepted a tagged frame")
	}
}

func TestTaggedResponseRoundTrip(t *testing.T) {
	resp := service.Response{Decisions: []types.Value{7, 7, 7}, Condition: "D.1", OK: true}
	tag := Tag{Tenant: 3, Corr: 12}
	for _, tc := range []struct {
		st     Status
		errmsg string
	}{
		{StatusOK, ""},
		{StatusQuota, "tenant 3 out of tokens"},
	} {
		var want service.Response
		if tc.st == StatusOK {
			want = resp
		}
		buf, err := AppendTaggedResponse(nil, 9, tag, tc.st, want, tc.errmsg)
		if err != nil {
			t.Fatal(err)
		}
		payload, err := ReadFrame(bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		id, gotTag, tagged, st, got, errmsg, err := DecodeAnyResponse(payload)
		if err != nil {
			t.Fatal(err)
		}
		if id != 9 || !tagged || gotTag != tag || st != tc.st || errmsg != tc.errmsg {
			t.Fatalf("id=%d tagged=%v tag=%+v st=%v errmsg=%q", id, tagged, gotTag, st, errmsg)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestDecodeAnyAcceptsPlain(t *testing.T) {
	req := service.Request{N: 5, M: 1, U: 2, Value: 1}
	buf, err := AppendRequest(nil, 5, req)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	id, tag, tagged, got, err := DecodeAnyRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if id != 5 || tagged || tag != (Tag{}) || got.Tenant != 0 {
		t.Fatalf("plain decode: id=%d tagged=%v tag=%+v tenant=%d", id, tagged, tag, got.Tenant)
	}
}

func TestStatusQuotaString(t *testing.T) {
	if StatusQuota.String() != "resource_exhausted" {
		t.Fatalf("StatusQuota = %q", StatusQuota.String())
	}
}

// TestServerEchoesTag proves the end-to-end tag contract: a tagged request
// over a real server comes back on a tagged response with the same tag,
// and the tenant reaches the service request.
func TestServerEchoesTag(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Config{Shards: 1, SpecSample: 1})
	srv := NewServer(ln, svc)
	go srv.Serve()
	defer srv.Shutdown(context.Background())

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	tag := Tag{Tenant: 42, Corr: 1 << 30}
	ch, err := c.SendTagged(service.Request{N: 5, M: 1, U: 2, Value: 77}, tag)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := <-ch
	if !ok {
		t.Fatal("connection lost")
	}
	if r.Status != StatusOK {
		t.Fatalf("status %v errmsg %q", r.Status, r.Errmsg)
	}
	if !r.Tagged || r.Tag != tag {
		t.Fatalf("tag not echoed: tagged=%v tag=%+v want %+v", r.Tagged, r.Tag, tag)
	}
	// Plain sends on the same connection still get plain responses.
	ch2, err := c.Send(service.Request{N: 5, M: 1, U: 2, Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r2 := <-ch2; r2.Tagged {
		t.Fatal("plain request answered with a tagged response")
	}
}
