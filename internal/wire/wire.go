// Package wire is the minimal length-prefixed binary codec for the
// agreement service's request/response frames.
//
// Every frame is a 4-byte big-endian payload length followed by the
// payload. Payloads open with a version byte and a frame-type byte, then a
// caller-chosen 8-byte request ID that the service echoes back, so clients
// can pipeline requests over one connection and demultiplex responses.
//
//	request  := ver type id n m u sender value nf fault*
//	fault    := node kind value seed
//	response := ver type id status (ok-body | errmsg)
//	ok-body  := condition flags ndec value*
//	errmsg   := len(uint16) bytes
//
// Tagged frames (types 3 and 4) carry an 8-byte routing tag — a 4-byte
// tenant ID and a 4-byte correlation value — between the request ID and
// the body; the body encoding is otherwise identical. The fleet router
// uses tags to bill admission per tenant and to multiplex many client
// connections onto a few pipelined backend connections; servers echo the
// tag of a tagged request back verbatim on its response.
//
//	tagged-request  := ver type id tenant corr <request body>
//	tagged-response := ver type id tenant corr <response body>
//
// All multi-byte integers are big-endian; n, m, u, sender, node, kind,
// condition, ndec, status, and flags are single bytes (the node-set limit
// caps N at 64, far below the byte ceiling); tenant and corr are 4 bytes;
// agreement values and seeds are 8 bytes.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"

	"degradable/internal/adversary"
	"degradable/internal/service"
	"degradable/internal/types"
)

// Version is the protocol version this package speaks.
const Version = 1

// MaxFrame bounds the accepted payload size: a response carrying 255
// decisions fits in well under 4 KiB, so anything near the bound is either
// corruption or abuse.
const MaxFrame = 1 << 16

// Frame types.
const (
	// TypeRequest frames a service.Request.
	TypeRequest = 1
	// TypeResponse frames a service.Response or an error status.
	TypeResponse = 2
	// TypeTaggedRequest frames a service.Request preceded by a routing Tag.
	TypeTaggedRequest = 3
	// TypeTaggedResponse frames a response preceded by the echoed Tag.
	TypeTaggedResponse = 4
)

// Tag is the per-frame routing metadata carried by tagged frames. Tenant
// bills the request to an admission-control tenant (0 = untenanted); Corr
// is an opaque correlation value the server echoes back verbatim — the
// router stamps it with the client-connection identity so a multiplexed
// response can be proven to route back to the connection that sent it.
type Tag struct {
	Tenant uint32
	Corr   uint32
}

// Status codes carried by response frames.
type Status uint8

// Response statuses.
const (
	// StatusOK carries a full response body.
	StatusOK Status = 0
	// StatusOverloaded reports admission rejection (retryable).
	StatusOverloaded Status = 1
	// StatusClosed reports a shutting-down server.
	StatusClosed Status = 2
	// StatusInvalid reports a request that failed validation.
	StatusInvalid Status = 3
	// StatusError reports an internal execution error.
	StatusError Status = 4
	// StatusQuota reports a per-tenant admission-control shed: the tenant's
	// token bucket is empty (RESOURCE_EXHAUSTED). Distinct from
	// StatusOverloaded, which reports a full server queue regardless of
	// tenant; both are retryable, but only quota sheds are the client's own
	// doing.
	StatusQuota Status = 5
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusOverloaded:
		return "overloaded"
	case StatusClosed:
		return "closed"
	case StatusInvalid:
		return "invalid"
	case StatusError:
		return "error"
	case StatusQuota:
		return "resource_exhausted"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Response flag bits.
const (
	flagDegraded = 1 << iota
	flagChecked
	flagOK
	flagGraceful
)

// Condition codes (byte form of the paper condition names).
var condCodes = map[string]uint8{"none": 0, "D.1": 1, "D.2": 2, "D.3": 3, "D.4": 4}
var condNames = [...]string{"none", "D.1", "D.2", "D.3", "D.4"}

// AppendRequest appends a request frame (length prefix included) to buf.
func AppendRequest(buf []byte, id uint64, req service.Request) ([]byte, error) {
	return appendRequest(buf, id, TypeRequest, Tag{}, req)
}

// AppendTaggedRequest appends a tagged request frame carrying tag.
func AppendTaggedRequest(buf []byte, id uint64, tag Tag, req service.Request) ([]byte, error) {
	return appendRequest(buf, id, TypeTaggedRequest, tag, req)
}

func appendRequest(buf []byte, id uint64, typ uint8, tag Tag, req service.Request) ([]byte, error) {
	if req.N < 2 || req.N > 255 || req.M < 0 || req.M > 255 || req.U < 0 || req.U > 255 {
		return nil, fmt.Errorf("wire: parameters out of byte range: N=%d M=%d U=%d", req.N, req.M, req.U)
	}
	if req.Sender < 0 || req.Sender > 255 {
		return nil, fmt.Errorf("wire: sender %d out of byte range", int(req.Sender))
	}
	if len(req.Faults) > 255 {
		return nil, fmt.Errorf("wire: %d faults exceed the frame limit", len(req.Faults))
	}
	body := 2 + 8 + 4 + 8 + 1 + len(req.Faults)*18
	if typ == TypeTaggedRequest {
		body += 8
	}
	buf = appendHeader(buf, body, typ, id)
	if typ == TypeTaggedRequest {
		buf = appendTag(buf, tag)
	}
	buf = append(buf, byte(req.N), byte(req.M), byte(req.U), byte(req.Sender))
	buf = binary.BigEndian.AppendUint64(buf, uint64(req.Value))
	buf = append(buf, byte(len(req.Faults)))
	for _, f := range req.Faults {
		if f.Node < 0 || f.Node > 255 {
			return nil, fmt.Errorf("wire: faulty node %d out of byte range", int(f.Node))
		}
		if f.Kind < 0 || int(f.Kind) > 255 {
			return nil, fmt.Errorf("wire: fault kind %d out of byte range", int(f.Kind))
		}
		buf = append(buf, byte(f.Node), byte(f.Kind))
		buf = binary.BigEndian.AppendUint64(buf, uint64(f.Value))
		buf = binary.BigEndian.AppendUint64(buf, uint64(f.Seed))
	}
	return buf, nil
}

// AppendResponse appends a response frame to buf. For StatusOK the response
// body is encoded; for every other status errmsg is carried instead.
func AppendResponse(buf []byte, id uint64, st Status, resp service.Response, errmsg string) ([]byte, error) {
	return appendResponse(buf, id, TypeResponse, Tag{}, st, resp, errmsg)
}

// AppendTaggedResponse appends a tagged response frame echoing tag.
func AppendTaggedResponse(buf []byte, id uint64, tag Tag, st Status, resp service.Response, errmsg string) ([]byte, error) {
	return appendResponse(buf, id, TypeTaggedResponse, tag, st, resp, errmsg)
}

func appendResponse(buf []byte, id uint64, typ uint8, tag Tag, st Status, resp service.Response, errmsg string) ([]byte, error) {
	tagLen := 0
	if typ == TypeTaggedResponse {
		tagLen = 8
	}
	if st != StatusOK {
		if len(errmsg) > 0xFFFF {
			errmsg = errmsg[:0xFFFF]
		}
		body := 2 + 8 + tagLen + 1 + 2 + len(errmsg)
		buf = appendHeader(buf, body, typ, id)
		if tagLen > 0 {
			buf = appendTag(buf, tag)
		}
		buf = append(buf, byte(st))
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(errmsg)))
		return append(buf, errmsg...), nil
	}
	code, ok := condCodes[resp.Condition]
	if !ok {
		return nil, fmt.Errorf("wire: unknown condition %q", resp.Condition)
	}
	if len(resp.Decisions) > 255 {
		return nil, fmt.Errorf("wire: %d decisions exceed the frame limit", len(resp.Decisions))
	}
	var flags uint8
	if resp.Degraded {
		flags |= flagDegraded
	}
	if resp.Checked {
		flags |= flagChecked
	}
	if resp.OK {
		flags |= flagOK
	}
	if resp.Graceful {
		flags |= flagGraceful
	}
	body := 2 + 8 + tagLen + 1 + 1 + 1 + 1 + len(resp.Decisions)*8
	buf = appendHeader(buf, body, typ, id)
	if tagLen > 0 {
		buf = appendTag(buf, tag)
	}
	buf = append(buf, byte(st), code, flags, byte(len(resp.Decisions)))
	for _, d := range resp.Decisions {
		buf = binary.BigEndian.AppendUint64(buf, uint64(d))
	}
	return buf, nil
}

// appendHeader appends the length prefix, version, type, and ID.
func appendHeader(buf []byte, body int, typ uint8, id uint64) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(body))
	buf = append(buf, Version, typ)
	return binary.BigEndian.AppendUint64(buf, id)
}

// appendTag appends the 8-byte routing tag of a tagged frame.
func appendTag(buf []byte, tag Tag) []byte {
	buf = binary.BigEndian.AppendUint32(buf, tag.Tenant)
	return binary.BigEndian.AppendUint32(buf, tag.Corr)
}

// ReadFrame reads one length-prefixed payload from r. It returns io.EOF
// cleanly only when the stream ends on a frame boundary. Each call
// allocates a fresh payload; read loops should prefer ReadFrameInto.
func ReadFrame(r io.Reader) ([]byte, error) {
	return ReadFrameInto(r, nil)
}

// ReadFrameInto is ReadFrame with a caller-supplied buffer: the payload is
// read into buf when its capacity suffices, and a larger buffer is
// allocated otherwise. The returned slice is valid until the next call
// that reuses buf; both Decode functions copy everything they retain, so a
// read loop can pass the previous return value back in and amortize the
// per-frame allocation away entirely.
func ReadFrameInto(r io.Reader, buf []byte) ([]byte, error) {
	n, buf, err := readPrefix(r, buf)
	if err != nil {
		return nil, err
	}
	return readPayload(r, buf, n)
}

// readPrefix reads and validates the 4-byte length prefix, returning the
// payload length and the (possibly grown) reuse buffer. Split from
// readPayload so the server can move its read deadline between the idle
// wait (before a frame begins) and the frame read (once it has).
func readPrefix(r io.Reader, buf []byte) (uint32, []byte, error) {
	// The length prefix is read into the (possibly grown) reuse buffer: a
	// stack array would escape through the io.Reader interface and cost an
	// allocation per frame — the very thing this path exists to remove.
	if cap(buf) < 4 {
		buf = make([]byte, 4)
	}
	lenBuf := buf[:4]
	if _, err := io.ReadFull(r, lenBuf); err != nil {
		return 0, buf, err
	}
	n := binary.BigEndian.Uint32(lenBuf)
	if n < 10 {
		return 0, buf, fmt.Errorf("wire: frame of %d bytes below the 10-byte header", n)
	}
	if n > MaxFrame {
		return 0, buf, fmt.Errorf("wire: frame of %d bytes exceeds the %d limit", n, MaxFrame)
	}
	return n, buf, nil
}

// readPayload reads the n-byte payload following a validated prefix.
func readPayload(r io.Reader, buf []byte, n uint32) ([]byte, error) {
	var payload []byte
	if int(n) <= cap(buf) {
		payload = buf[:n]
	} else {
		payload = make([]byte, n)
	}
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}

// header decodes and validates the common payload prefix.
func header(payload []byte, wantType uint8) (id uint64, rest []byte, err error) {
	if len(payload) < 10 {
		return 0, nil, fmt.Errorf("wire: truncated header (%d bytes)", len(payload))
	}
	if payload[0] != Version {
		return 0, nil, fmt.Errorf("wire: version %d, want %d", payload[0], Version)
	}
	if payload[1] != wantType {
		return 0, nil, fmt.Errorf("wire: frame type %d, want %d", payload[1], wantType)
	}
	return binary.BigEndian.Uint64(payload[2:10]), payload[10:], nil
}

// headerAny decodes the common prefix of a frame that may be plain or
// tagged, returning the tag when present.
func headerAny(payload []byte, plainType, taggedType uint8) (id uint64, tag Tag, tagged bool, rest []byte, err error) {
	if len(payload) < 10 {
		return 0, tag, false, nil, fmt.Errorf("wire: truncated header (%d bytes)", len(payload))
	}
	if payload[0] != Version {
		return 0, tag, false, nil, fmt.Errorf("wire: version %d, want %d", payload[0], Version)
	}
	id = binary.BigEndian.Uint64(payload[2:10])
	switch payload[1] {
	case plainType:
		return id, tag, false, payload[10:], nil
	case taggedType:
		if len(payload) < 18 {
			return 0, tag, false, nil, fmt.Errorf("wire: truncated tag (%d bytes)", len(payload))
		}
		tag.Tenant = binary.BigEndian.Uint32(payload[10:14])
		tag.Corr = binary.BigEndian.Uint32(payload[14:18])
		return id, tag, true, payload[18:], nil
	default:
		return 0, tag, false, nil, fmt.Errorf("wire: frame type %d, want %d or %d", payload[1], plainType, taggedType)
	}
}

// DecodeRequest decodes a request payload (as returned by ReadFrame).
func DecodeRequest(payload []byte) (id uint64, req service.Request, err error) {
	id, b, err := header(payload, TypeRequest)
	if err != nil {
		return 0, req, err
	}
	req, _, err = decodeRequestBody(b, nil)
	return id, req, err
}

// DecodeAnyRequest decodes a request payload of either frame type. For
// tagged requests req.Tenant carries the tag's tenant so admission
// accounting flows through the service untouched.
func DecodeAnyRequest(payload []byte) (id uint64, tag Tag, tagged bool, req service.Request, err error) {
	id, tag, tagged, req, _, err = DecodeAnyRequestInto(payload, nil)
	return id, tag, tagged, req, err
}

// DecodeAnyRequestInto is DecodeAnyRequest with a caller-supplied fault
// buffer: the fault list is decoded into buf when its capacity suffices
// (a larger buffer is allocated otherwise), and the possibly-grown buffer
// is returned for the next call. req.Faults aliases it, so the request is
// only valid until the buffer is reused — callers that retain the request
// past the next decode must copy the faults first (service.Slot.Submit
// already does). With a warm buffer the request read path performs zero
// allocations per frame.
func DecodeAnyRequestInto(payload []byte, buf []service.FaultSpec) (id uint64, tag Tag, tagged bool, req service.Request, faultBuf []service.FaultSpec, err error) {
	id, tag, tagged, b, err := headerAny(payload, TypeRequest, TypeTaggedRequest)
	if err != nil {
		return 0, tag, false, req, buf, err
	}
	req, buf, err = decodeRequestBody(b, buf)
	req.Tenant = tag.Tenant
	return id, tag, tagged, req, buf, err
}

func decodeRequestBody(b []byte, buf []service.FaultSpec) (req service.Request, _ []service.FaultSpec, err error) {
	if len(b) < 13 {
		return req, buf, fmt.Errorf("wire: truncated request body (%d bytes)", len(b))
	}
	req.N = int(b[0])
	req.M = int(b[1])
	req.U = int(b[2])
	req.Sender = types.NodeID(b[3])
	req.Value = types.Value(binary.BigEndian.Uint64(b[4:12]))
	nf := int(b[12])
	b = b[13:]
	if len(b) != nf*18 {
		return req, buf, fmt.Errorf("wire: %d fault bytes, want %d", len(b), nf*18)
	}
	if nf > 0 {
		if cap(buf) < nf {
			buf = make([]service.FaultSpec, nf)
		}
		buf = buf[:nf]
		for i := 0; i < nf; i++ {
			f := b[i*18 : (i+1)*18]
			buf[i] = service.FaultSpec{
				Node:  types.NodeID(f[0]),
				Kind:  adversary.Kind(f[1]),
				Value: types.Value(binary.BigEndian.Uint64(f[2:10])),
				Seed:  int64(binary.BigEndian.Uint64(f[10:18])),
			}
		}
		req.Faults = buf
	}
	return req, buf, nil
}

// DecodeResponse decodes a response payload (as returned by ReadFrame).
// errmsg is populated for non-OK statuses.
func DecodeResponse(payload []byte) (id uint64, st Status, resp service.Response, errmsg string, err error) {
	id, b, err := header(payload, TypeResponse)
	if err != nil {
		return 0, 0, resp, "", err
	}
	st, resp, errmsg, err = decodeResponseBody(b)
	return id, st, resp, errmsg, err
}

// DecodeAnyResponse decodes a response payload of either frame type,
// returning the echoed tag when the frame is tagged.
func DecodeAnyResponse(payload []byte) (id uint64, tag Tag, tagged bool, st Status, resp service.Response, errmsg string, err error) {
	id, tag, tagged, b, err := headerAny(payload, TypeResponse, TypeTaggedResponse)
	if err != nil {
		return 0, tag, false, 0, resp, "", err
	}
	st, resp, errmsg, err = decodeResponseBody(b)
	return id, tag, tagged, st, resp, errmsg, err
}

func decodeResponseBody(b []byte) (st Status, resp service.Response, errmsg string, err error) {
	if len(b) < 1 {
		return 0, resp, "", fmt.Errorf("wire: empty response body")
	}
	st = Status(b[0])
	b = b[1:]
	if st != StatusOK {
		if len(b) < 2 {
			return st, resp, "", fmt.Errorf("wire: truncated error message")
		}
		n := int(binary.BigEndian.Uint16(b[:2]))
		if len(b) != 2+n {
			return st, resp, "", fmt.Errorf("wire: error message of %d bytes, want %d", len(b)-2, n)
		}
		return st, resp, string(b[2:]), nil
	}
	if len(b) < 3 {
		return st, resp, "", fmt.Errorf("wire: truncated response body (%d bytes)", len(b))
	}
	code, flags, ndec := b[0], b[1], int(b[2])
	if int(code) >= len(condNames) {
		return st, resp, "", fmt.Errorf("wire: unknown condition code %d", code)
	}
	resp.Condition = condNames[code]
	resp.Degraded = flags&flagDegraded != 0
	resp.Checked = flags&flagChecked != 0
	resp.OK = flags&flagOK != 0
	resp.Graceful = flags&flagGraceful != 0
	b = b[3:]
	if len(b) != ndec*8 {
		return st, resp, "", fmt.Errorf("wire: %d decision bytes, want %d", len(b), ndec*8)
	}
	if ndec > 0 {
		resp.Decisions = make([]types.Value, ndec)
		for i := range resp.Decisions {
			resp.Decisions[i] = types.Value(binary.BigEndian.Uint64(b[i*8 : (i+1)*8]))
		}
	}
	return st, resp, "", nil
}
