package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"strings"
	"testing"

	"degradable/internal/adversary"
	"degradable/internal/service"
	"degradable/internal/types"
)

func TestRequestRoundTrip(t *testing.T) {
	reqs := []service.Request{
		{N: 5, M: 1, U: 2, Value: 42},
		{N: 7, M: 2, U: 2, Sender: 3, Value: -1, Faults: []service.FaultSpec{
			{Node: 0, Kind: adversary.KindLie, Value: 99, Seed: 0},
			{Node: 6, Kind: adversary.KindRandom, Value: -7, Seed: 123456789},
		}},
		{N: 64, M: 0, U: 63, Value: types.Default},
	}
	for i, req := range reqs {
		buf, err := AppendRequest(nil, uint64(i)+7, req)
		if err != nil {
			t.Fatalf("req %d: encode: %v", i, err)
		}
		payload, err := ReadFrame(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("req %d: read frame: %v", i, err)
		}
		id, got, err := DecodeRequest(payload)
		if err != nil {
			t.Fatalf("req %d: decode: %v", i, err)
		}
		if id != uint64(i)+7 {
			t.Errorf("req %d: id %d, want %d", i, id, i+7)
		}
		if !reflect.DeepEqual(got, req) {
			t.Errorf("req %d: round-trip mismatch:\n got %+v\nwant %+v", i, got, req)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []service.Response{
		{Decisions: []types.Value{7, 7, 7, 7, 7}, Condition: "D.1", OK: true},
		{Decisions: []types.Value{types.Default, 5, 5}, Condition: "D.3",
			Degraded: true, Checked: true, OK: true, Graceful: true},
		{Decisions: []types.Value{-9}, Condition: "none"},
	}
	for i, resp := range resps {
		buf, err := AppendResponse(nil, 99, StatusOK, resp, "")
		if err != nil {
			t.Fatalf("resp %d: encode: %v", i, err)
		}
		payload, err := ReadFrame(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("resp %d: read frame: %v", i, err)
		}
		id, st, got, errmsg, err := DecodeResponse(payload)
		if err != nil {
			t.Fatalf("resp %d: decode: %v", i, err)
		}
		if id != 99 || st != StatusOK || errmsg != "" {
			t.Errorf("resp %d: id=%d st=%v errmsg=%q", i, id, st, errmsg)
		}
		if !reflect.DeepEqual(got, resp) {
			t.Errorf("resp %d: round-trip mismatch:\n got %+v\nwant %+v", i, got, resp)
		}
	}
}

func TestErrorResponseRoundTrip(t *testing.T) {
	buf, err := AppendResponse(nil, 4, StatusOverloaded, service.Response{}, "shard queue full")
	if err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	id, st, _, errmsg, err := DecodeResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if id != 4 || st != StatusOverloaded || errmsg != "shard queue full" {
		t.Fatalf("got id=%d st=%v errmsg=%q", id, st, errmsg)
	}
}

func TestEncodeRejects(t *testing.T) {
	if _, err := AppendRequest(nil, 1, service.Request{N: 300, M: 1, U: 2}); err == nil {
		t.Error("N=300 encoded")
	}
	if _, err := AppendRequest(nil, 1, service.Request{N: 5, M: 1, U: 2, Sender: -1}); err == nil {
		t.Error("negative sender encoded")
	}
	if _, err := AppendResponse(nil, 1, StatusOK, service.Response{Condition: "D.9"}, ""); err == nil {
		t.Error("unknown condition encoded")
	}
}

func TestReadFrameRejects(t *testing.T) {
	// Undersized length prefix.
	var tiny [4]byte
	binary.BigEndian.PutUint32(tiny[:], 3)
	if _, err := ReadFrame(bytes.NewReader(tiny[:])); err == nil {
		t.Error("3-byte frame accepted")
	}
	// Oversized length prefix.
	var huge [4]byte
	binary.BigEndian.PutUint32(huge[:], MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(huge[:])); err == nil {
		t.Error("oversized frame accepted")
	}
	// Truncated payload must be ErrUnexpectedEOF, not clean EOF.
	buf, _ := AppendRequest(nil, 1, service.Request{N: 5, M: 1, U: 2, Value: 1})
	if _, err := ReadFrame(bytes.NewReader(buf[:len(buf)-2])); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated payload: %v, want ErrUnexpectedEOF", err)
	}
	// Clean boundary EOF stays io.EOF.
	if _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream: %v, want io.EOF", err)
	}
}

// TestReadFrameInto verifies the buffer-reuse contract: a sufficient buffer
// is reused in place, an insufficient one is replaced, and a read loop
// feeding the previous payload back in stops allocating.
func TestReadFrameInto(t *testing.T) {
	small, _ := AppendRequest(nil, 1, service.Request{N: 5, M: 1, U: 2, Value: 1})
	big, _ := AppendRequest(nil, 2, service.Request{N: 7, M: 2, U: 2, Value: 9,
		Faults: []service.FaultSpec{{Node: 1, Kind: adversary.KindLie, Value: 3}}})

	// Growing: nil buffer allocates, then the bigger frame replaces it.
	r := bytes.NewReader(append(append([]byte(nil), small...), big...))
	p1, err := ReadFrameInto(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ReadFrameInto(r, p1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2) != len(big)-4 {
		t.Fatalf("second frame: %d bytes, want %d", len(p2), len(big)-4)
	}
	if _, req, err := DecodeRequest(p2); err != nil || len(req.Faults) != 1 {
		t.Fatalf("second frame decode: %v, faults %v", err, req.Faults)
	}

	// Shrinking: a roomy buffer must be reused, not reallocated.
	roomy := make([]byte, 0, MaxFrame)
	p3, err := ReadFrameInto(bytes.NewReader(small), roomy)
	if err != nil {
		t.Fatal(err)
	}
	if &p3[0] != &roomy[:1][0] {
		t.Error("sufficient buffer was not reused")
	}

	// A steady-state read loop over identical frames is allocation-free.
	var stream []byte
	for i := 0; i < 8; i++ {
		stream = append(stream, small...)
	}
	buf := make([]byte, 0, len(small))
	sr := bytes.NewReader(stream)
	allocs := testing.AllocsPerRun(50, func() {
		sr.Reset(stream)
		for {
			p, err := ReadFrameInto(sr, buf)
			if err != nil {
				break
			}
			buf = p
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state read loop allocates %.1f times per run, want 0", allocs)
	}
}

func TestDecodeRejects(t *testing.T) {
	good, _ := AppendRequest(nil, 1, service.Request{N: 5, M: 1, U: 2, Value: 1,
		Faults: []service.FaultSpec{{Node: 1, Kind: adversary.KindLie, Value: 2}}})
	payload := good[4:] // strip length prefix

	bad := append([]byte{}, payload...)
	bad[0] = 9 // wrong version
	if _, _, err := DecodeRequest(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version: %v", err)
	}
	bad = append([]byte{}, payload...)
	bad[1] = TypeResponse // wrong type
	if _, _, err := DecodeRequest(bad); err == nil {
		t.Error("wrong frame type decoded")
	}
	if _, _, err := DecodeRequest(payload[:len(payload)-1]); err == nil {
		t.Error("truncated fault list decoded")
	}
	if _, _, err := DecodeRequest(payload[:12]); err == nil {
		t.Error("truncated body decoded")
	}
	if _, _, _, _, err := DecodeResponse(payload); err == nil {
		t.Error("request payload decoded as response")
	}
}
