// Package workload drives long-horizon missions: a stream of agreement
// instances under a stochastic fault process (Markov on/off per node,
// modelling transient faults and repairs), producing the aggregate
// statistics a reliability engineer would ask of a deployed system — how
// often the system ran degraded, how deep the degradation went, and whether
// the paper's conditions ever failed inside their fault bounds.
package workload

import (
	"fmt"
	"math/rand"

	"degradable/internal/adversary"
	"degradable/internal/core"
	"degradable/internal/runner"
	"degradable/internal/spec"
	"degradable/internal/types"
)

// FaultProcess is a per-node two-state Markov chain evolved once per step.
type FaultProcess struct {
	// FailRate is P(healthy → faulty) per step.
	FailRate float64
	// RepairRate is P(faulty → healthy) per step (transient faults).
	RepairRate float64
}

// Validate checks the rates.
func (fp FaultProcess) Validate() error {
	if fp.FailRate < 0 || fp.FailRate > 1 || fp.RepairRate < 0 || fp.RepairRate > 1 {
		return fmt.Errorf("workload: rates must be in [0,1], got %+v", fp)
	}
	return nil
}

// Config describes a mission.
type Config struct {
	// Params is the agreement instance shape used at every step.
	Params core.Params
	// Steps is the number of agreement instances to run.
	Steps int
	// Seed drives the fault process, sender values, and strategy choice.
	Seed int64
	// Process is the fault dynamics.
	Process FaultProcess
}

// Report aggregates a mission.
type Report struct {
	// Steps echoes the mission length.
	Steps int
	// Classic, Degraded, and BeyondU count steps by fault regime.
	Classic, Degraded, BeyondU int
	// Violations counts steps (within f ≤ u) whose condition failed; the
	// paper guarantees zero.
	Violations int
	// GracefulFailures counts steps (within f ≤ u) where fewer than m+1
	// fault-free nodes shared a value; also guaranteed zero.
	GracefulFailures int
	// FullAgreement counts steps where every fault-free receiver decided
	// the same non-default value.
	FullAgreement int
	// SplitSteps counts degraded-regime steps where at least one fault-free
	// receiver landed on V_d (actual degradation, not just permission).
	SplitSteps int
	// MaxConsecutiveDegraded is the longest run of degraded-regime steps.
	MaxConsecutiveDegraded int
	// Messages is the total protocol traffic.
	Messages int
	// PeakFaulty is the largest simultaneous fault count observed.
	PeakFaulty int
}

// Run executes the mission.
func Run(cfg Config) (*Report, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Process.Validate(); err != nil {
		return nil, err
	}
	if cfg.Steps < 1 {
		return nil, fmt.Errorf("workload: need at least one step")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := cfg.Params
	faulty := make([]bool, p.N)
	rep := &Report{Steps: cfg.Steps}
	consecutive := 0

	for step := 0; step < cfg.Steps; step++ {
		// Evolve the fault process.
		for i := range faulty {
			if faulty[i] {
				if rng.Float64() < cfg.Process.RepairRate {
					faulty[i] = false
				}
			} else if rng.Float64() < cfg.Process.FailRate {
				faulty[i] = true
			}
		}
		var faultyIDs []types.NodeID
		for i, bad := range faulty {
			if bad {
				faultyIDs = append(faultyIDs, types.NodeID(i))
			}
		}
		if len(faultyIDs) > rep.PeakFaulty {
			rep.PeakFaulty = len(faultyIDs)
		}

		// Arm a random battery scenario.
		honest := make([]types.NodeID, 0, p.N)
		fset := types.NewNodeSet(faultyIDs...)
		for i := 0; i < p.N; i++ {
			if !fset.Contains(types.NodeID(i)) {
				honest = append(honest, types.NodeID(i))
			}
		}
		value := types.Value(rng.Intn(1000) + 1)
		battery := adversary.Battery()
		sc := battery[rng.Intn(len(battery))]
		strategies := sc.Build(faultyIDs, rng.Int63(), adversary.Context{
			N: p.N, Sender: p.Sender, SenderValue: value, Alt: value + 100000, Honest: honest,
		})

		in := runner.Instance{Protocol: p, SenderValue: value, Strategies: strategies}
		res, verdict, err := in.Run()
		if err != nil {
			return nil, err
		}
		rep.Messages += res.Messages

		switch verdict.Regime {
		case spec.RegimeClassic:
			rep.Classic++
			consecutive = 0
		case spec.RegimeDegraded:
			rep.Degraded++
			consecutive++
			if consecutive > rep.MaxConsecutiveDegraded {
				rep.MaxConsecutiveDegraded = consecutive
			}
		default:
			rep.BeyondU++
			consecutive = 0
		}
		if verdict.Regime != spec.RegimeBeyond {
			if !verdict.OK {
				rep.Violations++
			}
			if !verdict.Graceful {
				rep.GracefulFailures++
			}
			if verdict.Classes[types.Default] > 0 && verdict.Regime == spec.RegimeDegraded {
				rep.SplitSteps++
			}
			if len(verdict.Classes) == 1 && verdict.Classes[types.Default] == 0 {
				rep.FullAgreement++
			}
		}
	}
	return rep, nil
}
