package workload

import (
	"reflect"
	"testing"

	"degradable/internal/core"
)

func baseConfig() Config {
	return Config{
		Params:  core.Params{N: 5, M: 1, U: 2},
		Steps:   200,
		Seed:    7,
		Process: FaultProcess{FailRate: 0.05, RepairRate: 0.5},
	}
}

func TestValidation(t *testing.T) {
	cfg := baseConfig()
	cfg.Params.N = 3
	if _, err := Run(cfg); err == nil {
		t.Error("invalid params should error")
	}
	cfg = baseConfig()
	cfg.Steps = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero steps should error")
	}
	cfg = baseConfig()
	cfg.Process.FailRate = 1.5
	if _, err := Run(cfg); err == nil {
		t.Error("bad rate should error")
	}
}

func TestMissionInvariants(t *testing.T) {
	rep, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Errorf("condition violations within bounds: %d", rep.Violations)
	}
	if rep.GracefulFailures != 0 {
		t.Errorf("graceful-degradation failures within bounds: %d", rep.GracefulFailures)
	}
	if rep.Classic+rep.Degraded+rep.BeyondU != rep.Steps {
		t.Errorf("regime counts don't sum: %+v", rep)
	}
	if rep.Messages == 0 {
		t.Error("no traffic counted")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed produced different reports:\n%+v\n%+v", a, b)
	}
}

func TestFaultFreeProcess(t *testing.T) {
	cfg := baseConfig()
	cfg.Process = FaultProcess{}
	cfg.Steps = 20
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Classic != 20 || rep.Degraded != 0 || rep.BeyondU != 0 {
		t.Errorf("fault-free mission regimes: %+v", rep)
	}
	if rep.FullAgreement != 20 {
		t.Errorf("FullAgreement = %d, want 20", rep.FullAgreement)
	}
	if rep.PeakFaulty != 0 {
		t.Errorf("PeakFaulty = %d", rep.PeakFaulty)
	}
}

func TestHighChurnReachesDegradedAndBeyond(t *testing.T) {
	cfg := baseConfig()
	cfg.Process = FaultProcess{FailRate: 0.4, RepairRate: 0.3}
	cfg.Steps = 300
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded == 0 {
		t.Error("high churn never reached the degraded regime")
	}
	if rep.BeyondU == 0 {
		t.Error("high churn never exceeded u (statistically implausible)")
	}
	if rep.Violations != 0 || rep.GracefulFailures != 0 {
		t.Errorf("violations within bounds under churn: %+v", rep)
	}
	if rep.MaxConsecutiveDegraded == 0 {
		t.Error("expected at least one degraded streak")
	}
}

func TestBiggerInstance(t *testing.T) {
	if testing.Short() {
		t.Skip("long mission skipped in -short mode")
	}
	cfg := Config{
		Params:  core.Params{N: 7, M: 2, U: 2},
		Steps:   100,
		Seed:    3,
		Process: FaultProcess{FailRate: 0.1, RepairRate: 0.4},
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Errorf("violations: %d", rep.Violations)
	}
}
