package degradable

import (
	"testing"

	"degradable/internal/adversary"
)

// TestFaultKindEnumAligned pins the facade FaultKind constants to the shared
// adversary.Kind enumeration: the chaos engine serializes kinds by number,
// and the shrinker renders them back as facade constants, so the two
// enumerations must never drift.
func TestFaultKindEnumAligned(t *testing.T) {
	pairs := []struct {
		facade FaultKind
		kind   adversary.Kind
	}{
		{FaultSilent, adversary.KindSilent},
		{FaultCrash, adversary.KindCrash},
		{FaultLie, adversary.KindLie},
		{FaultTwoFaced, adversary.KindTwoFaced},
		{FaultRandom, adversary.KindRandom},
	}
	for _, p := range pairs {
		if int(p.facade) != int(p.kind) {
			t.Errorf("FaultKind %d != adversary.%v (%d)", int(p.facade), p.kind, int(p.kind))
		}
	}
}

// TestStrategyDelegatesToSharedBuilder keeps Fault.strategy and the shared
// builder in agreement on the unknown-kind error the facade documents.
func TestStrategyDelegatesToSharedBuilder(t *testing.T) {
	f := Fault{Node: 1, Kind: FaultKind(42)}
	if _, err := f.strategy(5); err == nil {
		t.Error("unknown kind accepted")
	}
	for _, k := range []FaultKind{FaultSilent, FaultCrash, FaultLie, FaultTwoFaced, FaultRandom} {
		f := Fault{Node: 1, Kind: k, Value: 99, Seed: 7}
		if s, err := f.strategy(5); err != nil || s == nil {
			t.Errorf("kind %v: strategy = %v, %v", k, s, err)
		}
	}
}
