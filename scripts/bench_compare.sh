#!/usr/bin/env bash
# Benchmark comparison report (non-failing; stdlib + awk only).
#
# Runs the eig and service benchmarks and prints two comparisons:
#
#   1. Engine old-vs-new: the eig benchmarks carry both storage engines as
#      sub-benchmarks (".../map" is the hash-map engine the flat engine
#      replaced), so one run yields a benchstat-style map-vs-flat delta
#      table without any git archaeology.
#   2. Baseline old-vs-new: the raw `go test -bench` output is written to
#      BENCH_go.txt; pass a previous run's file (or keep one as
#      BENCH_baseline.txt) and matching benchmarks are diffed old-vs-new.
#
# It also diffs the unified telemetry artifacts (BENCH_service.json,
# BENCH_cluster.json, BENCH_recovery.json, BENCH_fleet.json,
# BENCH_topology.json, BENCH_async.json — the first four embed the obs
# snapshot schema; the recovery artifact adds the crash-recovery section:
# restarts, checkpoint rejections, convergence-time stats; the fleet
# artifact adds the per-tier latency breakdown, per-tenant quota sheds, and
# the single-daemon speedup; the topology artifact is the Theorem 3
# boundary table: per-cell spec verdicts, connectivity margins, classic-BA
# baseline, and physical-traffic cost; the async artifact is the
# FIFO-vs-adversarial scheduling benchmark: deliveries-to-decision
# percentiles, certificate-traffic totals, and the always-zero
# safety_violations gate) against kept baselines
# (BENCH_service_baseline.json, BENCH_cluster_baseline.json,
# BENCH_recovery_baseline.json, BENCH_fleet_baseline.json,
# BENCH_topology_baseline.json, BENCH_async_baseline.json), so a cluster
# round-latency or router-overhead regression shows up in a check.sh run
# the same way a microbenchmark regression does.
#
# Usage:
#   scripts/bench_compare.sh [baseline.txt]
#   scripts/bench_compare.sh --artifacts-only   # only the JSON artifact diffs
#
# Environment:
#   BENCHTIME   per-benchmark time budget (default 0.3s; check.sh uses 1x
#               for a smoke pass)
#
# The script never fails the build: it is a report, not a gate. Benchmark
# regressions are for humans to judge with the numbers in front of them.
set -uo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-0.3s}"
RAW="BENCH_go.txt"
BASELINE="${1:-BENCH_baseline.txt}"

# artifact_keys extracts whitelisted numeric "key": value pairs from an
# indented bench-artifact JSON (the unified snapshot schema keeps these key
# names stable across BENCH_service.json and BENCH_cluster.json).
artifact_keys() {
  awk '
    match($0, /"(roundWaitP50Ms|roundWaitP99Ms|roundWaitMaxMs|lateBatches|late_batches_total|deadline_misses_total|vd_subs_total|throughput_per_s|latency_p50_us|latency_p99_us|degraded_fraction|spec_violations|vd_decider_fraction|floor_margin_min|degraded_total|completed_total|fastpath_hit_total|fastpath_fallback_total|fastpath_hits|fastpath_fallbacks|fastpath_hit_frac|restarts|checkpointsTotal|corruptRejected|staleRejected|missingReinits|convergeCount|convergeMeanMs|convergeMaxMs|restart_total|checkpoint_corrupt_total|checkpoint_stale_total|checkpoint_missing_total|p50_us|p95_us|p99_us|quota_shed|router_overhead_frac|speedup_vs_single|single_throughput_per_s|send_lag_max_us|connectivity_margin|hops_per_logical_msg|forwarded_total|hops_total|cells_total|cells_held|cells_degraded|cells_failed|classic_refused_degradable_ok|bound_violations|dtd_p50|dtd_p95|dtd_p99|echo_total|ready_total|cert_total|terminated|not_terminated|safety_violations)":[ ]*-?[0-9.eE+-]+/) {
      s = substr($0, RSTART, RLENGTH)
      split(s, kv, /":[ ]*/)
      key = substr(kv[1], 2)
      if (!(key in seen)) { seen[key] = 1; print key, kv[2] }
    }
  ' "$1"
}

# artifact_diff prints one artifact either as current values (no baseline)
# or as an old-vs-new delta table.
artifact_diff() {
  local new="$1" old="$2" title="$3"
  [ -f "$new" ] || return 0
  echo
  echo "== $title ($new vs ${old##*/}) =="
  if [ -f "$old" ]; then
    { artifact_keys "$old"; echo ---; artifact_keys "$new"; } | awk '
      /^---$/ { phase = 1; next }
      phase == 0 { oldv[$1] = $2; next }
      { newv[$1] = $2; if ($1 in oldv) seen[$1] = 1 }
      END {
        printf "%-28s %14s %14s %9s\n", "metric", "old", "new", "delta"
        n = 0
        for (k in seen) order[n++] = k
        for (i = 1; i < n; i++) { t = order[i]; j = i - 1
          while (j >= 0 && order[j] > t) { order[j+1] = order[j]; j-- }
          order[j+1] = t }
        for (i = 0; i < n; i++) { k = order[i]
          d = (oldv[k] != 0) ? (newv[k] - oldv[k]) / oldv[k] * 100 : 0
          printf "%-28s %14.6g %14.6g %8.1f%%\n", k, oldv[k], newv[k], d
        }
      }
    '
  else
    echo "(no baseline; keep a previous $new as $old to get deltas)"
    artifact_keys "$new" | awk '{ printf "%-28s %14.6g\n", $1, $2 }'
  fi
}

if [ "${1:-}" = "--artifacts-only" ]; then
  artifact_diff BENCH_service.json BENCH_service_baseline.json "service telemetry snapshot"
  artifact_diff BENCH_cluster.json BENCH_cluster_baseline.json "cluster round-latency snapshot"
  artifact_diff BENCH_recovery.json BENCH_recovery_baseline.json "crash-recovery snapshot"
  artifact_diff BENCH_fleet.json BENCH_fleet_baseline.json "fleet per-tier latency snapshot"
  artifact_diff BENCH_topology.json BENCH_topology_baseline.json "Theorem 3 topology boundary table"
  artifact_diff BENCH_async.json BENCH_async_baseline.json "async scheduling benchmark (FIFO row)"
  exit 0
fi

echo "== benchmarks (benchtime=$BENCHTIME) =="
{
  go test -run '^$' -bench . -benchtime "$BENCHTIME" ./internal/eig/
  go test -run '^$' -bench . -benchtime "$BENCHTIME" ./internal/service/
} 2>&1 | tee "$RAW" | grep -E '^(Benchmark|ok|FAIL|---)' || true

echo
echo "== eig engine comparison (old = map engine, new = flat engine) =="
awk '
  # Lines look like: BenchmarkSetResolve/n7_d2/flat-4  999  124.5 ns/op  0 B/op  0 allocs/op
  /^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)            # strip the GOMAXPROCS suffix
    for (i = 2; i <= NF; i++) if ($i == "ns/op") ns = $(i-1)
    if (name ~ /\/flat$/) { key = name; sub(/\/flat$/, "", key); flat[key] = ns; seen[key] = 1 }
    if (name ~ /\/map$/)  { key = name; sub(/\/map$/, "", key);  mp[key] = ns;   seen[key] = 1 }
  }
  END {
    printf "%-34s %12s %12s %9s\n", "benchmark", "map ns/op", "flat ns/op", "delta"
    n = 0
    for (key in seen) order[n++] = key
    # insertion sort for stable, awk-portable output ordering
    for (i = 1; i < n; i++) { t = order[i]; j = i - 1
      while (j >= 0 && order[j] > t) { order[j+1] = order[j]; j-- }
      order[j+1] = t }
    for (i = 0; i < n; i++) { key = order[i]
      if (!(key in flat) || !(key in mp)) continue
      d = (flat[key] - mp[key]) / mp[key] * 100
      printf "%-34s %12.5g %12.5g %8.1f%%\n", key, mp[key], flat[key], d
    }
  }
' "$RAW"

if [ -f "$BASELINE" ] && [ "$BASELINE" != "$RAW" ]; then
  echo
  echo "== baseline comparison (old = $BASELINE, new = $RAW) =="
  awk '
    /^Benchmark/ && /ns\/op/ {
      name = $1
      sub(/-[0-9]+$/, "", name)
      for (i = 2; i <= NF; i++) if ($i == "ns/op") ns = $(i-1)
      if (FILENAME == ARGV[1]) { old[name] = ns } else { new_[name] = ns; if (name in old) seen[name] = 1 }
    }
    END {
      printf "%-44s %12s %12s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta"
      n = 0
      for (name in seen) order[n++] = name
      for (i = 1; i < n; i++) { t = order[i]; j = i - 1
        while (j >= 0 && order[j] > t) { order[j+1] = order[j]; j-- }
        order[j+1] = t }
      for (i = 0; i < n; i++) { name = order[i]
        d = (new_[name] - old[name]) / old[name] * 100
        printf "%-44s %12.5g %12.5g %8.1f%%\n", name, old[name], new_[name], d
      }
    }
  ' "$BASELINE" "$RAW"
else
  echo
  echo "(no baseline file; keep a previous $RAW as $BASELINE to get old-vs-new deltas)"
fi

artifact_diff BENCH_service.json BENCH_service_baseline.json "service telemetry snapshot"
artifact_diff BENCH_cluster.json BENCH_cluster_baseline.json "cluster round-latency snapshot"
artifact_diff BENCH_recovery.json BENCH_recovery_baseline.json "crash-recovery snapshot"
artifact_diff BENCH_fleet.json BENCH_fleet_baseline.json "fleet per-tier latency snapshot"
artifact_diff BENCH_topology.json BENCH_topology_baseline.json "Theorem 3 topology boundary table"
artifact_diff BENCH_async.json BENCH_async_baseline.json "async scheduling benchmark (FIFO row)"

exit 0
