#!/usr/bin/env bash
# Benchmark comparison report (non-failing; stdlib + awk only).
#
# Runs the eig and service benchmarks and prints two comparisons:
#
#   1. Engine old-vs-new: the eig benchmarks carry both storage engines as
#      sub-benchmarks (".../map" is the hash-map engine the flat engine
#      replaced), so one run yields a benchstat-style map-vs-flat delta
#      table without any git archaeology.
#   2. Baseline old-vs-new: the raw `go test -bench` output is written to
#      BENCH_go.txt; pass a previous run's file (or keep one as
#      BENCH_baseline.txt) and matching benchmarks are diffed old-vs-new.
#
# Usage:
#   scripts/bench_compare.sh [baseline.txt]
#
# Environment:
#   BENCHTIME   per-benchmark time budget (default 0.3s; check.sh uses 1x
#               for a smoke pass)
#
# The script never fails the build: it is a report, not a gate. Benchmark
# regressions are for humans to judge with the numbers in front of them.
set -uo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-0.3s}"
RAW="BENCH_go.txt"
BASELINE="${1:-BENCH_baseline.txt}"

echo "== benchmarks (benchtime=$BENCHTIME) =="
{
  go test -run '^$' -bench . -benchtime "$BENCHTIME" ./internal/eig/
  go test -run '^$' -bench . -benchtime "$BENCHTIME" ./internal/service/
} 2>&1 | tee "$RAW" | grep -E '^(Benchmark|ok|FAIL|---)' || true

echo
echo "== eig engine comparison (old = map engine, new = flat engine) =="
awk '
  # Lines look like: BenchmarkSetResolve/n7_d2/flat-4  999  124.5 ns/op  0 B/op  0 allocs/op
  /^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)            # strip the GOMAXPROCS suffix
    for (i = 2; i <= NF; i++) if ($i == "ns/op") ns = $(i-1)
    if (name ~ /\/flat$/) { key = name; sub(/\/flat$/, "", key); flat[key] = ns; seen[key] = 1 }
    if (name ~ /\/map$/)  { key = name; sub(/\/map$/, "", key);  mp[key] = ns;   seen[key] = 1 }
  }
  END {
    printf "%-34s %12s %12s %9s\n", "benchmark", "map ns/op", "flat ns/op", "delta"
    n = 0
    for (key in seen) order[n++] = key
    # insertion sort for stable, awk-portable output ordering
    for (i = 1; i < n; i++) { t = order[i]; j = i - 1
      while (j >= 0 && order[j] > t) { order[j+1] = order[j]; j-- }
      order[j+1] = t }
    for (i = 0; i < n; i++) { key = order[i]
      if (!(key in flat) || !(key in mp)) continue
      d = (flat[key] - mp[key]) / mp[key] * 100
      printf "%-34s %12.5g %12.5g %8.1f%%\n", key, mp[key], flat[key], d
    }
  }
' "$RAW"

if [ -f "$BASELINE" ] && [ "$BASELINE" != "$RAW" ]; then
  echo
  echo "== baseline comparison (old = $BASELINE, new = $RAW) =="
  awk '
    /^Benchmark/ && /ns\/op/ {
      name = $1
      sub(/-[0-9]+$/, "", name)
      for (i = 2; i <= NF; i++) if ($i == "ns/op") ns = $(i-1)
      if (FILENAME == ARGV[1]) { old[name] = ns } else { new_[name] = ns; if (name in old) seen[name] = 1 }
    }
    END {
      printf "%-44s %12s %12s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta"
      n = 0
      for (name in seen) order[n++] = name
      for (i = 1; i < n; i++) { t = order[i]; j = i - 1
        while (j >= 0 && order[j] > t) { order[j+1] = order[j]; j-- }
        order[j+1] = t }
      for (i = 0; i < n; i++) { name = order[i]
        d = (new_[name] - old[name]) / old[name] * 100
        printf "%-44s %12.5g %12.5g %8.1f%%\n", name, old[name], new_[name], d
      }
    }
  ' "$BASELINE" "$RAW"
else
  echo
  echo "(no baseline file; keep a previous $RAW as $BASELINE to get old-vs-new deltas)"
fi

exit 0
