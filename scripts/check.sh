#!/usr/bin/env bash
# Repository health check: format, vet, full tests (including exhaustive
# enumerations and the race detector), and a quick benchmark smoke pass.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
fmtout=$(gofmt -l .)
if [ -n "$fmtout" ]; then
	echo "unformatted files:" "$fmtout"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go test =="
go test ./...

echo "== go test -race (short) =="
go test -race -short ./...

echo "== benchmark smoke =="
go test -run XXX -bench . -benchtime 1x . >/dev/null

echo "== chaos campaign smoke =="
go run ./cmd/chaos -seed 42 -runs 250 >/dev/null

echo "all checks passed"
