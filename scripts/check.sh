#!/usr/bin/env bash
# Repository health check: format, vet, full tests (including exhaustive
# enumerations and the race detector), and a quick benchmark smoke pass.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
fmtout=$(gofmt -l .)
if [ -n "$fmtout" ]; then
	echo "unformatted files:" "$fmtout"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go test =="
go test ./...

echo "== go test -race (short) =="
go test -race -short ./...

echo "== go test -race (full, service + wire + cluster + fleet) =="
go test -race ./internal/service/... ./internal/wire/... ./internal/cluster/... ./internal/fleet/...

echo "== benchmark smoke =="
# The output is the point of a smoke pass: a benchmark that silently stops
# producing numbers (or starts erroring) must be visible here, not hidden
# in /dev/null.
go test -run XXX -bench . -benchtime 1x .

echo "== benchmark comparison (non-failing report) =="
# Runs the eig + service benchmarks (1 iteration each: this is the smoke
# pass for those packages too) and prints the map-vs-flat engine deltas.
# A report, not a gate — it never fails the check.
BENCHTIME=1x scripts/bench_compare.sh

echo "== service load benchmark (fault matrix + shard matrix) =="
# Short in-process fault-probability sweep (the fast-path speedup as a
# function of fault mix) followed by the shard sweep; writes the
# BENCH_service.json artifact at the repo root (throughput, latency
# percentiles, rejection rate, fastpath_hit_frac, and both matrices).
# Exits non-zero on any spec-sample violation. Scaling is
# hardware-dependent: on a single-core runner every point lands near 1x.
go run ./cmd/loadgen -inproc -fault-prob-sweep 0,0.25,0.5 -shard-sweep 1,2,4,8 -duration 2s -n 7 -m 1 -u 2 -json BENCH_service.json

echo "== chaos campaign smoke =="
go run ./cmd/chaos -seed 42 -runs 250 >/dev/null

echo "== topology smoke (sparse graphs under the round engine) =="
# A Harary-graph campaign with liars pinned on a minimum vertex cut, then
# a bridged-cut-set campaign; the binary already exits non-zero on any
# spec violation, and the greps gate that the sparse axis was actually
# exercised (per-margin tally lines present with live scenario counts).
go run ./cmd/chaos -seed 11 -runs 150 -graph harary:4:9 -placement cutset |
  grep -E 'topology margin=\+[0-9]+: scenarios=[1-9]'
go run ./cmd/chaos -seed 12 -runs 150 -graph bridge:3:4:3 -placement mixed |
  grep -E 'topology margin='
# The Theorem 3 boundary table: graph family x fault placement x f, with
# the classic-BA baseline column. The grep gates the paper's headline —
# at least one classic-refused-but-degradable cell — and zero violations
# above the bound (the sweep itself exits non-zero on any). Writes the
# BENCH_topology.json artifact at the repo root.
go run ./cmd/chaos -seed 9 -topo-sweep BENCH_topology.json -topo-runs 2 |
  grep -E 'classic_refused_degradable_ok=[1-9][0-9]* bound_violations=0'

echo "== async smoke (A-Cast + ABA under adversarial schedulers) =="
# A ≥200-scenario asynchronous campaign over the full scheduler pool
# (FIFO, reorder, unbounded delay, adversarial LIFO-bias, targeted
# starvation): the binary exits non-zero on any agreement/validity
# violation, and the grep gates that quorum safety held under every
# schedule while starvation produced its NotTerminated verdicts. Then the
# FIFO-vs-adversarial scheduling benchmark, which writes the
# deliveries-to-decision percentile artifact BENCH_async.json at the repo
# root and exits non-zero on any safety violation.
go run ./cmd/chaos -seed 42 -runs 250 -async |
  grep -E 'async: terminated=[1-9][0-9]* notTerminated=[1-9][0-9]* \(starved=[1-9][0-9]*\) certificates=[1-9][0-9]* safety_violations=0'
go run ./cmd/chaos -seed 7 -async-sweep BENCH_async.json -async-runs 200 |
  grep -E 'async sweep adversarial: .* safety_violations=0'

echo "== cluster mode smoke (one OS process per node) =="
# The paper's running example as 7 real processes over loopback TCP, then a
# short chaos campaign where every scenario runs cross-process. Exits
# non-zero on any D.1-D.4 / m+1-floor violation; writes the round-latency
# artifact BENCH_cluster.json and the structured round-event stream
# TRACE_cluster.jsonl at the repo root.
go run ./cmd/cluster -n 7 -m 1 -u 2 -faults 2:twofaced:999,5:silent -deadline 10s -trace TRACE_cluster.jsonl >/dev/null
go run ./cmd/cluster -n 7 -m 1 -u 2 -campaign 10 -seed 7 -deadline 10s -bench BENCH_cluster.json >/dev/null

echo "== crash-recovery smoke (mid-round SIGKILL + checkpoint restore) =="
# The paper's running example again, but node 2 is SIGKILLed right after its
# round-2 send, restarts from its checkpoint, and rejoins. The grep is the
# gate: the run must land in the Converged-in-k taxonomy with k <= m+1 (= 2)
# and a clean verdict — cmd/cluster already exits non-zero on any spec
# violation. Writes the convergence histogram + restart counters to
# BENCH_recovery.json and the recovery round-event stream to
# TRACE_recovery.jsonl at the repo root.
go run ./cmd/cluster -n 7 -m 1 -u 2 -kill 2:2:sent -deadline 10s \
  -bench BENCH_recovery.json -trace TRACE_recovery.jsonl |
  grep -E 'recovery: Converged-in-[0-2]-rounds'

echo "== fleet smoke (router + 2 daemons, CO-safe open loop) =="
# Builds the real serve and router binaries, spawns two daemons behind the
# router, and drives a short coordinated-omission-safe open-loop burst with
# tenant 1 quota-capped at 8/s. loadgen exits non-zero on any spec
# violation or request error; the greps gate the admission story — the
# capped tenant must shed with the explicit resource_exhausted status, and
# the uncapped tenant must not shed at all. The depth-4 shape keeps
# backend work dominant so the per-tier breakdown stays meaningful on a
# one-core runner. Writes the per-tier latency artifact BENCH_fleet.json
# at the repo root.
mkdir -p bin
go build -o bin/serve ./cmd/serve
go build -o bin/router ./cmd/router
go run ./cmd/loadgen -fleet 2 -conns 4 -tenants 2 -rate 40 -duration 3s \
  -n 11 -m 3 -u 3 -quota 1:8:3 \
  -serve-bin bin/serve -router-bin bin/router -json BENCH_fleet.json |
  tee /tmp/fleet_smoke.out
grep -Eq 'tenant 1 +requests=.* quota_shed=[1-9]' /tmp/fleet_smoke.out
grep -Eq 'tenant 0 +requests=.* quota_shed=0 ' /tmp/fleet_smoke.out

echo "== telemetry artifact comparison (non-failing report) =="
# Diffs the unified obs snapshots embedded in BENCH_service.json and
# BENCH_cluster.json against kept baselines, so a cluster round-latency
# regression is visible in the same place as a microbenchmark one.
scripts/bench_compare.sh --artifacts-only

echo "all checks passed"
