#!/usr/bin/env bash
# Repository health check: format, vet, full tests (including exhaustive
# enumerations and the race detector), and a quick benchmark smoke pass.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
fmtout=$(gofmt -l .)
if [ -n "$fmtout" ]; then
	echo "unformatted files:" "$fmtout"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go test =="
go test ./...

echo "== go test -race (short) =="
go test -race -short ./...

echo "== go test -race (full, service + wire) =="
go test -race ./internal/service/... ./internal/wire/...

echo "== benchmark smoke =="
# The output is the point of a smoke pass: a benchmark that silently stops
# producing numbers (or starts erroring) must be visible here, not hidden
# in /dev/null.
go test -run XXX -bench . -benchtime 1x .
go test -run XXX -bench . -benchtime 1x ./internal/service/

echo "== service load benchmark =="
# Short in-process load run; writes the BENCH_service.json artifact at the
# repo root (throughput, latency percentiles, rejection rate, degraded
# fraction). Exits non-zero on any spec-sample violation.
go run ./cmd/loadgen -inproc -duration 3s -n 7 -m 1 -u 2 -json BENCH_service.json

echo "== chaos campaign smoke =="
go run ./cmd/chaos -seed 42 -runs 250 >/dev/null

echo "all checks passed"
