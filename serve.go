package degradable

import (
	"net"

	"degradable/internal/adversary"
	"degradable/internal/service"
	"degradable/internal/wire"
)

// Agreement-as-a-service: the sharded concurrent runtime of
// internal/service and its TCP transport, re-exported so callers embed or
// operate the service through the facade vocabulary.
type (
	// Service is the sharded agreement-serving runtime: bounded admission
	// queues with explicit backpressure, shape-batched execution on pooled
	// instances, and continuous spec sampling.
	Service = service.Service
	// ServiceConfig parameterizes a Service.
	ServiceConfig = service.Config
	// ServiceStats is a snapshot of service counters.
	ServiceStats = service.Stats
	// Request is one agreement instance to execute.
	Request = service.Request
	// Response reports one executed instance.
	Response = service.Response
	// FaultSpec arms one node of a Request (same vocabulary as Fault).
	FaultSpec = service.FaultSpec
	// Server exposes a Service over TCP with graceful shutdown.
	Server = wire.Server
	// Client is a pipelining TCP client for a served Service.
	Client = wire.Client
)

// Service admission errors, matchable with errors.Is.
var (
	// ErrOverloaded marks a request rejected by a full shard queue.
	ErrOverloaded = service.ErrOverloaded
	// ErrServiceClosed marks a request submitted after shutdown began.
	ErrServiceClosed = service.ErrClosed
	// ErrInvalidRequest wraps admission-time validation failures.
	ErrInvalidRequest = service.ErrInvalid
)

// NewService starts an in-process agreement service.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// Serve exposes svc on ln and blocks accepting connections (the cmd/serve
// daemon in one call). Shut down with (*Server).Shutdown; Serve then
// returns net.ErrClosed.
func Serve(ln net.Listener, svc *Service) (*Server, error) {
	srv := wire.NewServer(ln, svc)
	return srv, srv.Serve()
}

// NewServer wraps an already-listening socket without blocking; call
// (*Server).Serve to accept.
func NewServer(ln net.Listener, svc *Service) *Server { return wire.NewServer(ln, svc) }

// Dial connects to a serve daemon.
func Dial(addr string) (*Client, error) { return wire.Dial(addr) }

// ServiceFault converts a facade Fault into the service request form.
func ServiceFault(f Fault) FaultSpec {
	return FaultSpec{Node: f.Node, Kind: adversary.Kind(f.Kind), Value: f.Value, Seed: f.Seed}
}
