package degradable_test

import (
	"context"
	"errors"
	"net"
	"testing"

	degradable "degradable"
	"degradable/internal/wire"
)

// TestServeFacade exercises the public serving surface end-to-end:
// NewService, NewServer, Dial, ServiceFault, and the error re-exports.
func TestServeFacade(t *testing.T) {
	svc := degradable.NewService(degradable.ServiceConfig{Shards: 1, SpecSample: 1})

	// In-process path first.
	resp, err := svc.Do(context.Background(), degradable.Request{
		N: 5, M: 1, U: 2, Value: 42,
		Faults: []degradable.FaultSpec{degradable.ServiceFault(degradable.Fault{
			Node: 3, Kind: degradable.FaultLie, Value: 99,
		})},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Decisions[1]; got != 42 {
		t.Fatalf("node 1 decided %s, want 42", got)
	}
	if !resp.Checked || !resp.OK {
		t.Fatalf("spec sample: Checked=%v OK=%v reason=%q", resp.Checked, resp.OK, resp.Reason)
	}

	// Same service over TCP.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := degradable.NewServer(ln, svc)
	go srv.Serve()
	c, err := degradable.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Do(context.Background(), degradable.Request{N: 5, M: 1, U: 2, Value: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != wire.StatusOK || res.Resp.Decisions[2] != 7 {
		t.Fatalf("remote: status=%v decisions=%v", res.Status, res.Resp.Decisions)
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(degradable.Request{N: 5, M: 1, U: 2, Value: 1}); !errors.Is(err, degradable.ErrServiceClosed) {
		t.Fatalf("post-shutdown submit: %v", err)
	}
	if st := svc.Stats(); st.SpecViolations != 0 || st.Completed < 2 {
		t.Fatalf("stats: %+v", st)
	}
}
